#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/fault_injection.h"
#include "core/sharded_store.h"
#include "net/protocol.h"

namespace aria::net {

namespace {

constexpr int kMaxEpollEvents = 64;
// Budget for the best-effort final flush during graceful shutdown.
constexpr int kStopFlushMillis = 200;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

// CPU burned by the calling thread, in microseconds. Same clock as
// Driver::ThreadCpuSeconds; duplicated here so net/ does not depend on
// workload/.
uint64_t ThreadCpuMicros() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000;
}

// Atomic-batch semantics for a non-sharded store: sequential apply with an
// undo log, rolled back in reverse on any failure. Plain stores are only
// served single-loop (they have no internal locking), so the apply window
// is not observable concurrently — this mirrors
// ShardedStore::ExecuteAtomicBatch minus the locks and counters.
Status ExecuteAtomicFallback(KVStore* store, AtomicOp* ops, size_t n) {
  struct Undo {
    size_t op;
    bool existed;
    std::string old_value;
  };
  std::vector<Undo> undo;
  Status failure;
  size_t failed_op = n;
  for (size_t i = 0; i < n && failure.ok(); ++i) {
    AtomicOp& op = ops[i];
    switch (op.kind) {
      case AtomicOp::Kind::kGet: {
        op.result.clear();
        op.status = store->Get(op.key, &op.result);
        if (!op.status.ok() && !op.status.IsNotFound()) {
          failure = op.status;
          failed_op = i;
        }
        break;
      }
      case AtomicOp::Kind::kPut:
      case AtomicOp::Kind::kRmw: {
        std::string old;
        Status pre = store->Get(op.key, &old);
        if (!pre.ok() && !pre.IsNotFound()) {
          op.status = pre;
          failure = pre;
          failed_op = i;
          break;
        }
        Status st = store->Put(op.key, op.value);
        if (!st.ok()) {
          op.status = st;
          failure = st;
          failed_op = i;
          break;
        }
        undo.push_back(Undo{i, pre.ok(), std::move(old)});
        if (op.kind == AtomicOp::Kind::kRmw) {
          op.result = undo.back().old_value;
          op.status = pre.ok() ? Status::OK() : Status::NotFound();
        } else {
          op.status = Status::OK();
        }
        break;
      }
      case AtomicOp::Kind::kDelete: {
        std::string old;
        Status pre = store->Get(op.key, &old);
        if (!pre.ok() && !pre.IsNotFound()) {
          op.status = pre;
          failure = pre;
          failed_op = i;
          break;
        }
        Status st = store->Delete(op.key);
        if (!st.ok() && !st.IsNotFound()) {
          op.status = st;
          failure = st;
          failed_op = i;
          break;
        }
        undo.push_back(Undo{i, pre.ok(), std::move(old)});
        op.status = st;
        break;
      }
    }
  }
  if (failure.ok()) return Status::OK();
  for (size_t j = undo.size(); j-- > 0;) {
    const Undo& u = undo[j];
    if (u.existed) {
      (void)store->Put(ops[u.op].key, Slice(u.old_value));
    } else {
      (void)store->Delete(ops[u.op].key);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (i != failed_op) ops[i].status = Status::Internal("batch aborted");
  }
  return failure;
}

}  // namespace

/// All connection state is owned by exactly one event-loop thread; nothing
/// here is shared. `in_off`/`out_off` track consumed prefixes so
/// steady-state traffic does not re-copy the buffers on every tick.
struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::string in;
  size_t in_off = 0;
  std::string out;
  size_t out_off = 0;
  bool want_write = false;  ///< EPOLLOUT armed
  bool close_after_flush = false;  ///< protocol error: answer, then close
  bool dead = false;

  size_t pending_out() const { return out.size() - out_off; }
};

/// One epoll loop: thread, fd set, connections, counters. Loop 0 also
/// watches the server's listen fd. Other loops receive accepted fds via
/// `inbox` + an eventfd wake from the accept loop.
struct Server::EventLoop {
  Server* server = nullptr;
  uint32_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;  ///< eventfd; Stop() and fd handoff poke it
  std::thread thread;
  std::vector<std::unique_ptr<Connection>> conns;
  ServerStats stats;

  /// Accepted fds handed off by the accept loop, adopted on the next wake.
  std::mutex inbox_mu;
  std::vector<int> inbox;

  ~EventLoop() {
    if (epoll_fd >= 0) close(epoll_fd);
    if (wake_fd >= 0) close(wake_fd);
    for (int fd : inbox) close(fd);
  }

  void Run();
  void AdoptInbox();
  /// Register `fd` with this loop. Called on the owning thread only.
  void AddConnection(int fd);
  /// Read what's ready on `conn`; returns false if the connection died.
  bool ReadInput(Connection* conn);
  /// Decode + execute + encode for every connection with buffered input.
  void ProcessTick(std::vector<Connection*>* ready);
  /// Try to write conn->out; arms EPOLLOUT on short writes. Returns false
  /// if the connection died (error, torn-write fault, backpressure cap).
  bool FlushOutput(Connection* conn);
  void CloseConnection(Connection* conn);
  void RecordBatchSize(size_t n);
};

Server::Server(KVStore* store, ServerOptions options)
    : store_(store),
      sharded_(dynamic_cast<ShardedStore*>(store)),
      ordered_(dynamic_cast<OrderedKVStore*>(store)),
      options_(std::move(options)) {}

Server::~Server() { Stop(); }

const ServerStats& Server::loop_stats(uint32_t i) const {
  return loops_[i]->stats;
}

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  if (options_.num_loops == 0) {
    return Status::InvalidArgument("num_loops must be >= 1");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, 128) < 0) {
    Status st = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st = Errno("getsockname");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  // Build every loop's fds before spawning any thread, so a failure leaves
  // nothing running and Stop() can clean up uniformly.
  loops_.clear();
  for (uint32_t i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->server = this;
    loop->index = i;
    loop->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      Status st = Errno(loop->epoll_fd < 0 ? "epoll_create1" : "eventfd");
      loops_.clear();
      close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = loop.get();  // loop pointer = its own wake fd
    if (epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) < 0) {
      Status st = Errno("epoll_ctl(wake)");
      loops_.clear();
      close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    loops_.push_back(std::move(loop));
  }
  // Loop 0 is the accept loop: only its epoll set watches the listener.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr = listen fd
  if (epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    Status st = Errno("epoll_ctl(listen)");
    loops_.clear();
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  next_loop_ = 0;
  total_connections_.store(0, std::memory_order_relaxed);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    loop->thread = std::thread([l = loop.get()] { l->Run(); });
  }
  return Status::OK();
}

Status Server::Stop() {
  if (running_.load(std::memory_order_acquire)) {
    stop_requested_.store(true, std::memory_order_release);
    uint64_t one = 1;
    for (auto& loop : loops_) {
      [[maybe_unused]] ssize_t n = write(loop->wake_fd, &one, sizeof(one));
    }
    for (auto& loop : loops_) loop->thread.join();
    running_.store(false, std::memory_order_release);
  } else {
    for (auto& loop : loops_) {
      if (loop->thread.joinable()) loop->thread.join();
    }
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain AFTER every loop has joined: no batch can be in flight, so the
  // flush sees quiescent shards and the end-of-serving invariant audit
  // (net_test) runs against a consistent image.
  if (sharded_ != nullptr) return sharded_->Drain();
  return Status::OK();
}

void Server::Accept(EventLoop* loop) {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    if (total_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Count before close: the peer observes the rejection as EOF, and a
      // metrics scrape triggered by that EOF must already see the counter.
      loop->stats.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    total_connections_.fetch_add(1, std::memory_order_relaxed);
    // Round-robin handoff: deterministic balance regardless of how the
    // kernel would hash flows (SO_REUSEPORT leaves balance to a 4-tuple
    // hash, which is terrible at small connection counts).
    EventLoop* target = loops_[next_loop_ % loops_.size()].get();
    next_loop_++;
    if (target == loop) {
      loop->AddConnection(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(target->inbox_mu);
      target->inbox.push_back(fd);
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(target->wake_fd, &one, sizeof(one));
  }
}

void Server::EventLoop::AdoptInbox() {
  std::vector<int> pending;
  {
    std::lock_guard<std::mutex> lk(inbox_mu);
    pending.swap(inbox);
  }
  for (int fd : pending) AddConnection(fd);
}

void Server::EventLoop::AddConnection(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->id = server->next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn.get();
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    close(fd);
    server->total_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  conns.push_back(std::move(conn));
  stats.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  stats.connections_active.store(conns.size(), std::memory_order_relaxed);
}

bool Server::EventLoop::ReadInput(Connection* conn) {
  // Reclaim the consumed prefix before appending (amortized O(1)).
  if (conn->in_off > 0 && conn->in_off * 2 >= conn->in.size()) {
    conn->in.erase(0, conn->in_off);
    conn->in_off = 0;
  }
  size_t budget = server->options_.read_chunk_bytes;
  while (budget > 0) {
    const size_t chunk = budget < 16384 ? budget : 16384;
    const size_t old = conn->in.size();
    conn->in.resize(old + chunk);
    ssize_t n = read(conn->fd, conn->in.data() + old, chunk);
    if (n > 0) {
      conn->in.resize(old + static_cast<size_t>(n));
      stats.bytes_in.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
      budget -= static_cast<size_t>(n);
      if (static_cast<size_t>(n) < chunk) return true;  // drained the socket
      continue;
    }
    conn->in.resize(old);
    if (n == 0) {
      stats.connections_closed.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    stats.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return false;
  }
  return true;
}

void Server::EventLoop::RecordBatchSize(size_t n) {
  int b = n == 0 ? 0 : std::bit_width(n) - 1;
  if (b >= ServerStats::kBatchBuckets) b = ServerStats::kBatchBuckets - 1;
  stats.batch_size_hist[b].fetch_add(1, std::memory_order_relaxed);
}

void Server::EventLoop::ProcessTick(std::vector<Connection*>* ready) {
  // Decode every complete frame from every ready connection. Entries for
  // one connection are contiguous and in arrival order, so writing the
  // responses back in list order preserves per-connection FIFO no matter
  // how execution is grouped below.
  struct Pending {
    Connection* conn = nullptr;
    Request req;
    WireStatus status = WireStatus::kOk;
    std::string payload;
  };
  std::vector<Pending> pending;

  for (Connection* conn : *ready) {
    if (conn->dead || conn->close_after_flush) continue;
    const size_t first_of_conn = pending.size();
    for (;;) {
      Request req;
      std::string error;
      size_t consumed = 0;
      DecodeResult r =
          DecodeRequest(conn->in.data() + conn->in_off,
                        conn->in.size() - conn->in_off, &consumed, &req,
                        &error);
      if (r == DecodeResult::kNeedMore) break;
      if (r == DecodeResult::kError) {
        // One verdict, then the stream is unrecoverable. The verdict goes
        // through the pending list like any response, so the answers to
        // the valid frames before it keep their order.
        stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        Pending verdict;
        verdict.conn = conn;
        verdict.status = WireStatus::kProtocolError;
        verdict.payload = std::move(error);
        verdict.req.op = OpCode::kPing;  // executes as a no-op
        pending.push_back(std::move(verdict));
        conn->close_after_flush = true;
        conn->in.clear();
        conn->in_off = 0;
        break;
      }
      conn->in_off += consumed;
      stats.requests_decoded.fetch_add(1, std::memory_order_relaxed);
      Pending p;
      p.conn = conn;
      p.req = std::move(req);
      pending.push_back(std::move(p));
    }
    // Fault point: the connection dies after its requests were read but
    // before any of them executes — the peer's whole in-flight pipeline is
    // lost mid-exchange. The injector sees which loop fired it.
    if (pending.size() > first_of_conn &&
        fault::InjectConnDrop(index, conn->id)) {
      pending.resize(first_of_conn);
      stats.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
    }
  }
  if (pending.empty()) return;

  // Execute. Point ops accumulate into one shard-grouped batch; a scan is
  // a barrier (it crosses shards), flushing the batch first so a pipelined
  // PUT-then-SCAN on one connection observes the PUT.
  std::vector<BatchOp> batch;
  std::vector<size_t> batch_owner;  // batch index -> pending index
  batch.reserve(pending.size());

  auto flush_batch = [&]() {
    if (batch.empty()) return;
    if (server->sharded_ != nullptr) {
      server->sharded_->ExecuteBatch(batch.data(), batch.size());
    } else {
      for (BatchOp& op : batch) {
        switch (op.kind) {
          case BatchOp::Kind::kGet:
            op.status = server->store_->Get(op.key, &op.result);
            break;
          case BatchOp::Kind::kPut:
            op.status = server->store_->Put(op.key, op.value);
            break;
          case BatchOp::Kind::kDelete:
            op.status = server->store_->Delete(op.key);
            break;
        }
      }
    }
    stats.batches.fetch_add(1, std::memory_order_relaxed);
    stats.batched_requests.fetch_add(batch.size(), std::memory_order_relaxed);
    RecordBatchSize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      Pending& p = pending[batch_owner[i]];
      p.status = ToWire(batch[i].status);
      if (batch[i].kind == BatchOp::Kind::kGet && batch[i].status.ok()) {
        p.payload = std::move(batch[i].result);
      } else if (!batch[i].status.ok()) {
        p.payload = batch[i].status.message();
      }
    }
    batch.clear();
    batch_owner.clear();
  };

  for (size_t i = 0; i < pending.size(); ++i) {
    Pending& p = pending[i];
    if (p.conn->dead) continue;
    BatchOp op;
    switch (p.req.op) {
      case OpCode::kGet:
        op.kind = BatchOp::Kind::kGet;
        break;
      case OpCode::kPut:
        op.kind = BatchOp::Kind::kPut;
        op.value = Slice(p.req.value);
        break;
      case OpCode::kDelete:
        op.kind = BatchOp::Kind::kDelete;
        break;
      case OpCode::kPing:
        continue;  // already kOk with an empty payload
      case OpCode::kScan: {
        flush_batch();
        stats.scans.fetch_add(1, std::memory_order_relaxed);
        if (server->ordered_ == nullptr) {
          p.status = WireStatus::kInvalidArgument;
          p.payload = "store has no ordered index";
          continue;
        }
        std::vector<std::pair<std::string, std::string>> rows;
        Status st =
            server->ordered_->RangeScan(p.req.key, p.req.scan_limit, &rows);
        p.status = ToWire(st);
        if (st.ok()) {
          EncodeScanPayload(rows,
                            kMaxResponseBodyBytes - kResponseFixedBytes,
                            &p.payload);
        } else {
          p.payload = st.message();
        }
        continue;
      }
      case OpCode::kMultiGet:
      case OpCode::kMultiPut:
      case OpCode::kAtomicRmw: {
        // A multi-op frame is a batch barrier like a scan: the whole client
        // batch executes as ONE atomic unit, ordered after every point op
        // decoded before it on this connection.
        flush_batch();
        stats.multiop_frames.fetch_add(1, std::memory_order_relaxed);
        stats.multiop_ops.fetch_add(p.req.ops.size(),
                                    std::memory_order_relaxed);
        AtomicOp::Kind kind = AtomicOp::Kind::kGet;
        if (p.req.op == OpCode::kMultiGet) {
          stats.multigets.fetch_add(1, std::memory_order_relaxed);
        } else if (p.req.op == OpCode::kMultiPut) {
          stats.multiputs.fetch_add(1, std::memory_order_relaxed);
          kind = AtomicOp::Kind::kPut;
        } else {
          stats.atomic_rmws.fetch_add(1, std::memory_order_relaxed);
          kind = AtomicOp::Kind::kRmw;
        }
        std::vector<AtomicOp> aops(p.req.ops.size());
        for (size_t j = 0; j < p.req.ops.size(); ++j) {
          aops[j].kind = kind;
          aops[j].key = Slice(p.req.ops[j].key);
          aops[j].value = Slice(p.req.ops[j].value);
        }
        Status st =
            server->sharded_ != nullptr
                ? server->sharded_->ExecuteAtomicBatch(aops.data(),
                                                       aops.size())
                : ExecuteAtomicFallback(server->store_, aops.data(),
                                        aops.size());
        if (!st.ok()) {
          p.status = ToWire(st);
          p.payload = st.message();
          continue;
        }
        std::vector<MultiResult> results(aops.size());
        for (size_t j = 0; j < aops.size(); ++j) {
          results[j].status = ToWire(aops[j].status);
          if (kind != AtomicOp::Kind::kPut) {
            results[j].value = std::move(aops[j].result);
          }
        }
        if (EncodeMultiResultPayload(
                results, kMaxResponseBodyBytes - kResponseFixedBytes,
                &p.payload)) {
          p.status = WireStatus::kOk;
        } else {
          // Response records are 1:1 with request ops and never truncated;
          // a batch whose values cannot fit one response frame is refused
          // (the writes, if any, have still committed atomically).
          p.status = WireStatus::kCapacityExceeded;
          p.payload = "multi-op response exceeds response body bound";
        }
        continue;
      }
    }
    op.key = Slice(p.req.key);
    batch.push_back(op);
    batch_owner.push_back(i);
  }
  flush_batch();

  // Responses, in per-connection arrival order; then one flush attempt per
  // touched connection.
  for (Pending& p : pending) {
    if (p.conn->dead) continue;
    EncodeResponse(p.status, p.payload, &p.conn->out);
    stats.responses_sent.fetch_add(1, std::memory_order_relaxed);
  }
  for (Connection* conn : *ready) {
    if (conn->dead || conn->pending_out() == 0) continue;
    if (!FlushOutput(conn)) continue;
    if (conn->pending_out() > server->options_.max_output_buffer_bytes) {
      // Backpressure: the peer pipelines faster than it reads. Cut it
      // loose instead of buffering without bound.
      stats.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
    } else if (conn->close_after_flush && conn->pending_out() == 0) {
      CloseConnection(conn);
    }
  }
}

bool Server::EventLoop::FlushOutput(Connection* conn) {
  if (conn->out_off > 0 && conn->out_off * 2 >= conn->out.size()) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  while (conn->pending_out() > 0) {
    const size_t want = conn->pending_out();
    // Fault point: tear the stream after a prefix of the encoded bytes —
    // the peer sees a syntactically broken frame followed by EOF.
    const size_t allowed = fault::InjectServerWrite(index, conn->id, want);
    if (allowed > 0) {
      ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                       allowed, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn->want_write) {
            epoll_event ev{};
            ev.events = EPOLLIN | EPOLLOUT;
            ev.data.ptr = conn;
            epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
            conn->want_write = true;
          }
          return true;
        }
        stats.connections_dropped.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(conn);
        return false;
      }
      conn->out_off += static_cast<size_t>(n);
      stats.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      if (static_cast<size_t>(n) < allowed) continue;  // partial; retry
    }
    if (allowed < want) {
      stats.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return false;
    }
  }
  if (conn->want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn;
    epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->want_write = false;
  }
  return true;
}

void Server::EventLoop::CloseConnection(Connection* conn) {
  if (conn->dead) return;
  epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  conn->fd = -1;
  conn->dead = true;
  server->total_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::EventLoop::Run() {
  const uint64_t cpu0 = ThreadCpuMicros();
  epoll_event events[kMaxEpollEvents];
  std::vector<Connection*> ready;
  while (!server->stop_requested_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    ready.clear();
    for (int i = 0; i < n; ++i) {
      void* ptr = events[i].data.ptr;
      if (ptr == nullptr) {
        server->Accept(this);
        continue;
      }
      if (ptr == this) {
        uint64_t drain;
        [[maybe_unused]] ssize_t r = read(wake_fd, &drain, sizeof(drain));
        AdoptInbox();
        continue;
      }
      auto* conn = static_cast<Connection*>(ptr);
      if (conn->dead) continue;  // closed earlier in this event batch
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        stats.connections_closed.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        if (!FlushOutput(conn)) continue;
        if (conn->close_after_flush && conn->pending_out() == 0) {
          CloseConnection(conn);
          continue;
        }
      }
      if (events[i].events & EPOLLIN) {
        if (ReadInput(conn)) ready.push_back(conn);
      }
    }
    if (!ready.empty()) ProcessTick(&ready);
    // Garbage-collect dead connections only at the tick boundary: earlier
    // events in this batch may still reference them by pointer.
    std::erase_if(conns, [](const std::unique_ptr<Connection>& c) {
      return c->dead;
    });
    stats.connections_active.store(conns.size(), std::memory_order_relaxed);
    stats.busy_micros.store(ThreadCpuMicros() - cpu0,
                            std::memory_order_relaxed);
  }

  // Graceful exit: give peers one bounded chance to take their pending
  // responses, then close everything. No new frames are executed. Fds
  // still sitting in the inbox never became connections; just close them.
  for (auto& conn_ptr : conns) {
    Connection* conn = conn_ptr.get();
    if (conn->dead) continue;
    int budget = kStopFlushMillis;
    while (conn->pending_out() > 0 && budget > 0) {
      ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                       conn->pending_out(), MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        stats.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                  std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{conn->fd, POLLOUT, 0};
        poll(&pfd, 1, 10);
        budget -= 10;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    CloseConnection(conn);
  }
  conns.clear();
  {
    std::lock_guard<std::mutex> lk(inbox_mu);
    for (int fd : inbox) {
      close(fd);
      server->total_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    inbox.clear();
  }
  stats.connections_active.store(0, std::memory_order_relaxed);
  stats.busy_micros.store(ThreadCpuMicros() - cpu0, std::memory_order_relaxed);
}

void Server::CollectMetrics(obs::MetricSink* sink) const {
  // One relaxed load per counter per collection: the per-loop values below
  // and the aggregates derived from them come from the SAME reads, so the
  // net-loop-conservation law holds on every snapshot, even one scraped
  // mid-serving.
  struct Plain {
    uint64_t accepted, rejected, dropped, closed, active;
    uint64_t decoded, sent, errors, batches, batched, scans, in, out, busy;
    uint64_t multiop_frames, multiop_ops, multigets, multiputs, atomic_rmws;
    uint64_t hist[ServerStats::kBatchBuckets];
  };
  auto load = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  std::vector<Plain> per_loop;
  per_loop.reserve(loops_.size());
  for (const auto& loop : loops_) {
    const ServerStats& s = loop->stats;
    Plain p{};
    p.accepted = load(s.connections_accepted);
    p.rejected = load(s.connections_rejected);
    p.dropped = load(s.connections_dropped);
    p.closed = load(s.connections_closed);
    p.active = load(s.connections_active);
    p.decoded = load(s.requests_decoded);
    p.sent = load(s.responses_sent);
    p.errors = load(s.protocol_errors);
    p.batches = load(s.batches);
    p.batched = load(s.batched_requests);
    p.scans = load(s.scans);
    p.in = load(s.bytes_in);
    p.out = load(s.bytes_out);
    p.busy = load(s.busy_micros);
    p.multiop_frames = load(s.multiop_frames);
    p.multiop_ops = load(s.multiop_ops);
    p.multigets = load(s.multigets);
    p.multiputs = load(s.multiputs);
    p.atomic_rmws = load(s.atomic_rmws);
    for (int i = 0; i < ServerStats::kBatchBuckets; ++i) {
      p.hist[i] = load(s.batch_size_hist[i]);
    }
    per_loop.push_back(p);
  }

  auto emit = [&](obs::MetricSink* out, const Plain& p, bool gauge_active) {
    out->Counter("connections_accepted", p.accepted);
    out->Counter("connections_rejected", p.rejected);
    out->Counter("connections_dropped", p.dropped);
    out->Counter("connections_closed", p.closed);
    if (gauge_active) out->Gauge("connections_active", p.active);
    out->Counter("requests_decoded", p.decoded);
    out->Counter("responses_sent", p.sent);
    out->Counter("protocol_errors", p.errors);
    out->Counter("batches", p.batches);
    out->Counter("batched_requests", p.batched);
    out->Counter("scans", p.scans);
    out->Counter("multiop_frames", p.multiop_frames);
    out->Counter("multiop_ops", p.multiop_ops);
    out->Counter("multigets", p.multigets);
    out->Counter("multiputs", p.multiputs);
    out->Counter("atomic_rmws", p.atomic_rmws);
    out->Counter("bytes_in", p.in);
    out->Counter("bytes_out", p.out);
    out->Counter("busy_micros", p.busy);
    for (int i = 0; i < ServerStats::kBatchBuckets; ++i) {
      out->Counter("batch_size_p2_" + std::to_string(i), p.hist[i]);
    }
  };

  Plain total{};
  for (size_t i = 0; i < per_loop.size(); ++i) {
    const Plain& p = per_loop[i];
    total.accepted += p.accepted;
    total.rejected += p.rejected;
    total.dropped += p.dropped;
    total.closed += p.closed;
    total.active += p.active;
    total.decoded += p.decoded;
    total.sent += p.sent;
    total.errors += p.errors;
    total.batches += p.batches;
    total.batched += p.batched;
    total.scans += p.scans;
    total.multiop_frames += p.multiop_frames;
    total.multiop_ops += p.multiop_ops;
    total.multigets += p.multigets;
    total.multiputs += p.multiputs;
    total.atomic_rmws += p.atomic_rmws;
    total.in += p.in;
    total.out += p.out;
    total.busy += p.busy;
    for (int b = 0; b < ServerStats::kBatchBuckets; ++b) {
      total.hist[b] += p.hist[b];
    }
    obs::PrefixedSink loop_sink(sink, "loop" + std::to_string(i));
    emit(&loop_sink, p, /*gauge_active=*/true);
  }
  emit(sink, total, /*gauge_active=*/true);
  sink->Gauge("num_loops", loops_.size());
}

}  // namespace aria::net
