// Blocking client for the Aria wire protocol, with explicit pipelining:
// the synchronous helpers (Get/Put/Delete/RangeScan/Ping) are one
// request/response round trip, while Send + ReadResponse let callers keep
// many requests in flight on one connection — the mode the load generator
// uses, and the mode that makes the server's per-tick batching visible.
//
// Responses arrive strictly in request order (the server guarantees
// per-connection FIFO), so a pipeline is just a depth counter: Send() n
// times, ReadResponse() n times.
//
// Duplex mode (EnableDuplex) splits the connection between exactly one
// sender thread (Send) and one receiver thread (ReadResponse /
// ReadResponseTimeout) — the shape the open-loop load generator needs,
// where sends are paced by an arrival schedule and must never wait for
// responses. In duplex mode an I/O error shuts the socket down (waking the
// peer thread with an error of its own) but leaves the fd open until the
// owner calls Close(), so neither thread can race the other onto a reused
// descriptor.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "net/protocol.h"

namespace aria::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to `host:port` (blocking). A connected client must be
  /// Close()d or destroyed; reconnecting an open client is an error.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const {
    return fd_ >= 0 && !failed_.load(std::memory_order_acquire);
  }

  /// Switch this connection to duplex mode: from now on Send may be called
  /// by one thread concurrently with ReadResponse on another. Error paths
  /// stop closing the fd (they shut it down and latch `failed`); the owner
  /// must still Close() from a single thread after both are done.
  void EnableDuplex() { duplex_ = true; }

  // --- synchronous one-shot operations -----------------------------------

  Status Get(Slice key, std::string* value);
  Status Put(Slice key, Slice value);
  Status Delete(Slice key);
  Status RangeScan(Slice start, uint32_t limit,
                   std::vector<std::pair<std::string, std::string>>* out);
  /// Round trip with no store effect; returning OK proves every previously
  /// pipelined request has been executed (FIFO).
  Status Ping();

  // --- atomic multi-key operations ----------------------------------------
  // One round trip each; the server executes the whole batch as a single
  // atomic unit (ShardedStore::ExecuteAtomicBatch). On OK, `results` holds
  // exactly one record per input op, in op order. A non-OK return means the
  // batch as a whole did not commit (per-op kNotFound records inside an OK
  // batch are normal outcomes, not batch failures).

  /// Atomic multi-key snapshot read: no concurrent batch's writes can be
  /// observed split across the returned values.
  Status MultiGet(const std::vector<std::string>& keys,
                  std::vector<MultiResult>* results);

  /// Atomic all-or-nothing multi-key write; `op.value` is the new value.
  Status MultiPut(const std::vector<MultiOp>& ops,
                  std::vector<MultiResult>* results);

  /// Atomic read-modify-write: writes every op's `value`, returns each
  /// key's pre-image (status kNotFound when the key was absent — the write
  /// still applies, upsert-style).
  Status AtomicRmw(const std::vector<MultiOp>& ops,
                   std::vector<MultiResult>* results);

  // --- pipelining ---------------------------------------------------------

  /// Encode and write `req` now (blocking until the kernel takes the
  /// bytes). The matching response must eventually be consumed with
  /// ReadResponse.
  Status Send(const Request& req);

  /// Blocking-read the next response frame. Returns Internal on EOF or a
  /// malformed frame (the connection is closed, or in duplex mode shut
  /// down, either way).
  Status ReadResponse(Response* resp);

  /// ReadResponse bounded by `timeout_ms` of socket inactivity. On expiry
  /// returns Internal, sets *timed_out = true and leaves the connection
  /// usable (a later call resumes mid-frame; buffered bytes are kept). Any
  /// other failure sets *timed_out = false and fails the connection as
  /// ReadResponse would.
  Status ReadResponseTimeout(Response* resp, int timeout_ms, bool* timed_out);

  /// Responses outstanding (Sends minus ReadResponses).
  uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  Status WriteAll(const char* data, size_t size);
  /// One request/response round trip; fails if a pipeline is in flight.
  Status Call(const Request& req, Response* resp);
  /// Error-path teardown: Close() normally; shutdown + latch in duplex.
  void Fail();

  int fd_ = -1;
  bool duplex_ = false;
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> in_flight_{0};
  std::string read_buf_;
  size_t read_off_ = 0;
};

// --- multi-connection load mode -------------------------------------------

/// Configuration for RunLoad: `connections` client threads, each with its
/// own Client, each keeping up to `depth` requests in flight for
/// `ops_per_connection` total operations.
struct LoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t connections = 4;
  uint32_t depth = 16;
  uint64_t ops_per_connection = 0;
};

struct LoadStats {
  uint64_t ops = 0;        ///< responses with kOk or kNotFound status
  uint64_t not_found = 0;  ///< the kNotFound subset
  uint64_t errors = 0;     ///< any other wire status
  uint32_t failed_connections = 0;  ///< threads that died mid-run
  double wall_seconds = 0;
  /// Total CPU burned by the client threads (CLOCK_THREAD_CPUTIME_ID),
  /// summed. Benches subtract this view from nothing — it exists so a
  /// single-core host's wall numbers can be sanity-checked against where
  /// the cycles actually went.
  double client_cpu_seconds = 0;

  bool ok() const { return errors == 0 && failed_connections == 0; }
};

/// Drive a server with `connections` pipelining threads. `make_request` is
/// called as make_request(conn, i) for connection `conn`'s i-th operation;
/// it must be thread-safe across different `conn` values (each thread only
/// uses its own `conn`). Blocks until every thread finishes.
LoadStats RunLoad(const LoadOptions& options,
                  const std::function<Request(uint64_t conn, uint64_t index)>&
                      make_request);

}  // namespace aria::net
