// Blocking client for the Aria wire protocol, with explicit pipelining:
// the synchronous helpers (Get/Put/Delete/RangeScan/Ping) are one
// request/response round trip, while Send + ReadResponse let callers keep
// many requests in flight on one connection — the mode the load generator
// uses, and the mode that makes the server's per-tick batching visible.
//
// Responses arrive strictly in request order (the server guarantees
// per-connection FIFO), so a pipeline is just a depth counter: Send() n
// times, ReadResponse() n times.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "net/protocol.h"

namespace aria::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to `host:port` (blocking). A connected client must be
  /// Close()d or destroyed; reconnecting an open client is an error.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- synchronous one-shot operations -----------------------------------

  Status Get(Slice key, std::string* value);
  Status Put(Slice key, Slice value);
  Status Delete(Slice key);
  Status RangeScan(Slice start, uint32_t limit,
                   std::vector<std::pair<std::string, std::string>>* out);
  /// Round trip with no store effect; returning OK proves every previously
  /// pipelined request has been executed (FIFO).
  Status Ping();

  // --- pipelining ---------------------------------------------------------

  /// Encode and write `req` now (blocking until the kernel takes the
  /// bytes). The matching response must eventually be consumed with
  /// ReadResponse.
  Status Send(const Request& req);

  /// Blocking-read the next response frame. Returns Internal on EOF or a
  /// malformed frame (the connection is closed either way).
  Status ReadResponse(Response* resp);

  /// Responses outstanding (Sends minus ReadResponses).
  uint64_t in_flight() const { return in_flight_; }

 private:
  Status WriteAll(const char* data, size_t size);
  /// One request/response round trip; fails if a pipeline is in flight.
  Status Call(const Request& req, Response* resp);

  int fd_ = -1;
  uint64_t in_flight_ = 0;
  std::string read_buf_;
  size_t read_off_ = 0;
};

}  // namespace aria::net
