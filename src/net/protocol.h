// Binary wire protocol for the network serving layer (DESIGN.md §11).
//
// Every frame is a little-endian u32 length prefix followed by that many
// body bytes. The decoder applies the same discipline RecordCodec::Verify
// uses against tampered headers: no client-supplied length is trusted until
// it has been checked against a hard bound AND against the bytes actually
// present, so a malicious peer can neither make the server over-read nor
// make it buffer an unbounded frame.
//
//   request body:   op(u8) key_len(u16) aux(u32) key[key_len] value[...]
//     aux = value length (kPut), scan limit (kScan), must be 0 otherwise
//   response body:  status(u8) payload_len(u32) payload[payload_len]
//     payload = value (kGet), packed pairs (kScan), error message (errors)
//
// Multi-key frames (kMultiGet / kMultiPut / kAtomicRmw) reuse the fixed
// request header with key_len = 0 and aux = op count, followed by `aux`
// count-prefixed entries that must tile the body exactly:
//   kMultiGet entry:            key_len(u16) key[key_len]
//   kMultiPut / kAtomicRmw:     key_len(u16) value_len(u32) key value
// Their response payload is count(u32) then one per-op record
// status(u8) value_len(u32) value — the old value for kAtomicRmw, the read
// value for kMultiGet, empty for kMultiPut — encoded / decoded with the
// same no-trust discipline as scan payloads.
//
// Decoding is incremental: feed the buffered bytes, get back kNeedMore (no
// complete frame yet), kFrame (one frame consumed), or kError (the peer is
// speaking garbage; the connection must be failed, resynchronization is
// impossible in a length-prefixed stream).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace aria::net {

enum class OpCode : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
  kScan = 4,
  kPing = 5,  ///< no-op round trip; used to drain a pipeline
  kMultiGet = 6,   ///< atomic multi-key snapshot read
  kMultiPut = 7,   ///< atomic multi-key write (all-or-nothing)
  kAtomicRmw = 8,  ///< atomic read-modify-write: returns old values, writes new
};

/// True for the count-prefixed multi-key opcodes.
inline constexpr bool IsMultiOp(OpCode op) {
  return op == OpCode::kMultiGet || op == OpCode::kMultiPut ||
         op == OpCode::kAtomicRmw;
}

/// Response status on the wire. The first six values mirror aria::Code so
/// store results cross the boundary losslessly; kProtocolError is the
/// server's verdict on a malformed frame (always followed by a close).
enum class WireStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCapacityExceeded = 3,
  kIntegrityViolation = 4,
  kInternal = 5,
  kProtocolError = 6,
};

// Hard bounds. A declared length beyond these is a protocol error, so the
// per-connection buffers the server keeps are bounded by construction.
inline constexpr uint32_t kMaxKeyBytes = 1024;
inline constexpr uint32_t kMaxValueBytes = 64 * 1024;
inline constexpr uint32_t kMaxScanLimit = 1024;
inline constexpr uint32_t kRequestFixedBytes = 7;  ///< op + key_len + aux
inline constexpr uint32_t kResponseFixedBytes = 5;  ///< status + payload_len
inline constexpr uint32_t kMaxRequestBodyBytes =
    kRequestFixedBytes + kMaxKeyBytes + kMaxValueBytes;
/// Scan responses are truncated server-side to fit this bound (the count on
/// the wire is always the count actually encoded).
inline constexpr uint32_t kMaxResponseBodyBytes = 1 << 20;
inline constexpr uint32_t kLengthPrefixBytes = 4;
/// Multi-key frames: at most this many ops per batch, and the whole body
/// (header + every entry) must fit the multi-op body bound — the global
/// ceiling on what a peer can make the server buffer for one frame. The
/// decoder still rejects single-op frames beyond kMaxRequestBodyBytes as
/// soon as the opcode byte is visible.
inline constexpr uint32_t kMaxBatchOps = 256;
inline constexpr uint32_t kMaxMultiRequestBodyBytes = 1 << 20;

/// One op of a multi-key request. `value` is used by kMultiPut (new value)
/// and kAtomicRmw (value to write); kMultiGet entries carry only the key.
struct MultiOp {
  std::string key;
  std::string value;
};

/// One per-op record of a multi-key response payload. `value` is the read
/// value (kMultiGet), the pre-image (kAtomicRmw), or empty (kMultiPut).
struct MultiResult {
  WireStatus status = WireStatus::kOk;
  std::string value;
};

struct Request {
  OpCode op = OpCode::kPing;
  std::string key;
  std::string value;        ///< kPut only
  uint32_t scan_limit = 0;  ///< kScan only
  std::vector<MultiOp> ops;  ///< kMultiGet / kMultiPut / kAtomicRmw only
};

struct Response {
  WireStatus status = WireStatus::kOk;
  std::string payload;
};

enum class DecodeResult : uint8_t { kNeedMore, kFrame, kError };

/// Append the encoded frame for `req` to `out`. Requests built by our own
/// client always satisfy the bounds; Encode does not re-check them (the
/// fuzzer builds its malformed frames by hand).
void EncodeRequest(const Request& req, std::string* out);

/// Append a response frame. `payload` is truncated to kMaxResponseBodyBytes
/// minus the fixed header if oversized (callers pre-fit scan payloads).
void EncodeResponse(WireStatus status, std::string_view payload,
                    std::string* out);

/// Try to decode one request frame from data[0..size). On kFrame fills
/// `*req` and sets `*consumed` to the frame's total size. On kError fills
/// `*error` with the reason; `*consumed` is meaningless and the stream must
/// be abandoned. On kNeedMore nothing is written.
DecodeResult DecodeRequest(const char* data, size_t size, size_t* consumed,
                           Request* req, std::string* error);

/// Same incremental contract for response frames (client side).
DecodeResult DecodeResponse(const char* data, size_t size, size_t* consumed,
                            Response* resp, std::string* error);

/// Pack scan results into a response payload: count(u32) then per pair
/// key_len(u16) value_len(u32) key value. Stops before exceeding
/// `max_payload_bytes`; returns the number of pairs encoded.
size_t EncodeScanPayload(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    size_t max_payload_bytes, std::string* out);

/// Inverse of EncodeScanPayload, with the same no-trust bounds discipline
/// (every declared length is checked against the bytes present).
Status DecodeScanPayload(
    std::string_view payload,
    std::vector<std::pair<std::string, std::string>>* out);

/// Pack per-op multi-key results into a response payload: count(u32) then
/// per op status(u8) value_len(u32) value. All-or-nothing — response
/// records must stay 1:1 with request ops, so unlike scan payloads nothing
/// is truncated: returns false (leaving `out` untouched) if the encoding
/// would exceed `max_payload_bytes`, and the server answers
/// kCapacityExceeded instead.
bool EncodeMultiResultPayload(const std::vector<MultiResult>& results,
                              size_t max_payload_bytes, std::string* out);

/// Inverse of EncodeMultiResultPayload, with the scan-payload no-trust
/// discipline: count and every declared length checked against hard bounds
/// and against the bytes present, no trailing slack.
Status DecodeMultiResultPayload(std::string_view payload,
                                std::vector<MultiResult>* out);

/// Store status -> wire status (kOk..kInternal map 1:1).
WireStatus ToWire(const Status& status);

/// Wire status -> store status, reconstructing the taxonomy the caller
/// would have seen in-process. kProtocolError maps to Internal.
Status FromWire(WireStatus status, std::string message = "");

/// Human-readable opcode / status names for logs and test failures.
const char* OpCodeName(OpCode op);
const char* WireStatusName(WireStatus status);

}  // namespace aria::net
