#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace aria::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

// A default Slice carries a null data pointer; std::string::assign requires
// a valid one even for length 0.
void AssignSlice(std::string* dst, aria::Slice src) {
  if (src.size() > 0) {
    dst->assign(src.data(), src.size());
  } else {
    dst->clear();
  }
}

}  // namespace

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("connect");
    Close();
    return st;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  duplex_ = false;
  failed_.store(false, std::memory_order_release);
  in_flight_.store(0, std::memory_order_relaxed);
  read_buf_.clear();
  read_off_ = 0;
}

void Client::Fail() {
  if (!duplex_) {
    Close();
    return;
  }
  // Duplex: the peer thread may be blocked in read()/send() on this fd.
  // shutdown() wakes it with an error while the fd number stays reserved
  // until the single-threaded owner calls Close().
  failed_.store(true, std::memory_order_release);
  if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
}

Status Client::WriteAll(const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = send(fd_, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("write");
      Fail();
      return st;
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::Send(const Request& req) {
  if (!connected()) return Status::InvalidArgument("not connected");
  std::string frame;
  EncodeRequest(req, &frame);
  ARIA_RETURN_IF_ERROR(WriteAll(frame.data(), frame.size()));
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Client::ReadResponse(Response* resp) {
  if (!connected()) return Status::InvalidArgument("not connected");
  for (;;) {
    std::string error;
    size_t consumed = 0;
    DecodeResult r =
        DecodeResponse(read_buf_.data() + read_off_,
                       read_buf_.size() - read_off_, &consumed, resp, &error);
    if (r == DecodeResult::kFrame) {
      read_off_ += consumed;
      if (read_off_ * 2 >= read_buf_.size()) {
        read_buf_.erase(0, read_off_);
        read_off_ = 0;
      }
      uint64_t cur = in_flight_.load(std::memory_order_relaxed);
      while (cur > 0 && !in_flight_.compare_exchange_weak(
                            cur, cur - 1, std::memory_order_relaxed)) {
      }
      return Status::OK();
    }
    if (r == DecodeResult::kError) {
      Fail();
      return Status::Internal("malformed response: " + error);
    }
    char chunk[16384];
    ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expiry (ReadResponseTimeout). Not a failure: any
        // partially buffered frame stays put for the next call.
        return Status::Internal("read timeout");
      }
      Status st = Errno("read");
      Fail();
      return st;
    }
    if (n == 0) {
      Fail();
      return Status::Internal("connection closed by server");
    }
    read_buf_.append(chunk, static_cast<size_t>(n));
  }
}

Status Client::ReadResponseTimeout(Response* resp, int timeout_ms,
                                   bool* timed_out) {
  *timed_out = false;
  if (!connected()) return Status::InvalidArgument("not connected");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  Status st = ReadResponse(resp);
  timeval off{};
  if (fd_ >= 0) setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &off, sizeof(off));
  if (!st.ok() && st.message() == "read timeout") *timed_out = true;
  return st;
}

Status Client::Call(const Request& req, Response* resp) {
  if (in_flight_ > 0) {
    return Status::InvalidArgument(
        "synchronous call with a pipeline in flight");
  }
  ARIA_RETURN_IF_ERROR(Send(req));
  return ReadResponse(resp);
}

Status Client::Get(Slice key, std::string* value) {
  Request req;
  req.op = OpCode::kGet;
  AssignSlice(&req.key, key);
  Response resp;
  ARIA_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.status != WireStatus::kOk) {
    return FromWire(resp.status, resp.payload);
  }
  *value = std::move(resp.payload);
  return Status::OK();
}

Status Client::Put(Slice key, Slice value) {
  Request req;
  req.op = OpCode::kPut;
  AssignSlice(&req.key, key);
  AssignSlice(&req.value, value);
  Response resp;
  ARIA_RETURN_IF_ERROR(Call(req, &resp));
  return FromWire(resp.status, resp.payload);
}

Status Client::Delete(Slice key) {
  Request req;
  req.op = OpCode::kDelete;
  AssignSlice(&req.key, key);
  Response resp;
  ARIA_RETURN_IF_ERROR(Call(req, &resp));
  return FromWire(resp.status, resp.payload);
}

Status Client::RangeScan(
    Slice start, uint32_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  Request req;
  req.op = OpCode::kScan;
  AssignSlice(&req.key, start);
  req.scan_limit = limit;
  Response resp;
  ARIA_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.status != WireStatus::kOk) {
    return FromWire(resp.status, resp.payload);
  }
  return DecodeScanPayload(resp.payload, out);
}

Status Client::Ping() {
  Request req;
  req.op = OpCode::kPing;
  Response resp;
  ARIA_RETURN_IF_ERROR(Call(req, &resp));
  return FromWire(resp.status, resp.payload);
}

namespace {

// Shared round-trip tail of the three multi-op helpers: a non-OK wire
// status is a batch-level failure; an OK payload must decode to exactly one
// record per request op.
Status FinishMultiCall(Client* client, const Request& req, size_t n_ops,
                       std::vector<MultiResult>* results) {
  Response resp;
  {
    Status st = client->Send(req);
    if (!st.ok()) return st;
    st = client->ReadResponse(&resp);
    if (!st.ok()) return st;
  }
  if (resp.status != WireStatus::kOk) {
    return FromWire(resp.status, resp.payload);
  }
  ARIA_RETURN_IF_ERROR(DecodeMultiResultPayload(resp.payload, results));
  if (results->size() != n_ops) {
    return Status::Internal("multi-op response record count mismatch");
  }
  return Status::OK();
}

}  // namespace

Status Client::MultiGet(const std::vector<std::string>& keys,
                        std::vector<MultiResult>* results) {
  if (in_flight() > 0) {
    return Status::InvalidArgument(
        "synchronous call with a pipeline in flight");
  }
  Request req;
  req.op = OpCode::kMultiGet;
  req.ops.reserve(keys.size());
  for (const std::string& key : keys) req.ops.push_back(MultiOp{key, {}});
  return FinishMultiCall(this, req, keys.size(), results);
}

Status Client::MultiPut(const std::vector<MultiOp>& ops,
                        std::vector<MultiResult>* results) {
  if (in_flight() > 0) {
    return Status::InvalidArgument(
        "synchronous call with a pipeline in flight");
  }
  Request req;
  req.op = OpCode::kMultiPut;
  req.ops = ops;
  return FinishMultiCall(this, req, ops.size(), results);
}

Status Client::AtomicRmw(const std::vector<MultiOp>& ops,
                         std::vector<MultiResult>* results) {
  if (in_flight() > 0) {
    return Status::InvalidArgument(
        "synchronous call with a pipeline in flight");
  }
  Request req;
  req.op = OpCode::kAtomicRmw;
  req.ops = ops;
  return FinishMultiCall(this, req, ops.size(), results);
}

namespace {

double ThreadCpuSecondsNow() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

LoadStats RunLoad(const LoadOptions& options,
                  const std::function<Request(uint64_t conn, uint64_t index)>&
                      make_request) {
  LoadStats stats;
  std::atomic<uint64_t> ops{0}, not_found{0}, errors{0};
  std::atomic<uint32_t> failed{0};
  std::atomic<uint64_t> cpu_nanos{0};

  auto worker = [&](uint64_t conn) {
    const double cpu0 = ThreadCpuSecondsNow();
    Client client;
    uint64_t local_ops = 0, local_nf = 0, local_err = 0;
    bool dead = false;
    if (!client.Connect(options.host, options.port).ok()) {
      dead = true;
    } else {
      uint64_t sent = 0, received = 0;
      while (received < options.ops_per_connection) {
        // Top the pipeline up, then take one response: steady state keeps
        // `depth` requests in flight, which is what makes the server's
        // per-tick batching (§V-B amortization) visible over the wire.
        while (sent < options.ops_per_connection &&
               sent - received < options.depth) {
          if (!client.Send(make_request(conn, sent)).ok()) {
            dead = true;
            break;
          }
          sent++;
        }
        if (dead) break;
        Response resp;
        if (!client.ReadResponse(&resp).ok()) {
          dead = true;
          break;
        }
        received++;
        if (resp.status == WireStatus::kOk) {
          local_ops++;
        } else if (resp.status == WireStatus::kNotFound) {
          local_ops++;
          local_nf++;
        } else {
          local_err++;
        }
      }
    }
    ops.fetch_add(local_ops, std::memory_order_relaxed);
    not_found.fetch_add(local_nf, std::memory_order_relaxed);
    errors.fetch_add(local_err, std::memory_order_relaxed);
    if (dead) failed.fetch_add(1, std::memory_order_relaxed);
    cpu_nanos.fetch_add(
        static_cast<uint64_t>((ThreadCpuSecondsNow() - cpu0) * 1e9),
        std::memory_order_relaxed);
  };

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  for (uint32_t c = 0; c < options.connections; ++c) {
    threads.emplace_back(worker, c);
  }
  for (std::thread& t : threads) t.join();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  stats.ops = ops.load();
  stats.not_found = not_found.load();
  stats.errors = errors.load();
  stats.failed_connections = failed.load();
  stats.client_cpu_seconds = static_cast<double>(cpu_nanos.load()) * 1e-9;
  return stats;
}

}  // namespace aria::net
