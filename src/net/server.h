// Epoll event-loop TCP server for the Aria wire protocol (DESIGN.md §11).
//
// One event-loop thread owns every connection. Each tick it reads all
// ready connections, decodes every complete frame, and executes the
// decoded point operations as ONE shard-grouped batch through
// ShardedStore::ExecuteBatch — the network analog of the paper's §V-B
// boundary-crossing amortization: N pipelined requests cost one shard-lock
// acquisition per touched shard instead of N. Range scans act as batch
// barriers (they cross shards), so per-connection request order is
// preserved exactly.
//
// Untrusted clients get the RecordCodec treatment: every frame is decoded
// under hard bounds (net/protocol.h), a malformed frame earns one
// ProtocolError response and a close, and both per-connection buffers are
// capped — input by the max frame size, output by
// ServerOptions::max_output_buffer_bytes. A client that stops reading
// while pipelining (slow client) hits the output cap and is disconnected
// (`connections_dropped`), so server memory stays bounded no matter what
// the peer does.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/kv_store.h"
#include "obs/metrics.h"

namespace aria {
class ShardedStore;
}  // namespace aria

namespace aria::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port from port()

  /// Accepted connections beyond this are closed immediately
  /// (`connections_rejected`).
  int max_connections = 64;

  /// Backpressure cap: a connection whose pending (unsent) responses
  /// exceed this is dropped (`connections_dropped`).
  size_t max_output_buffer_bytes = 1 << 20;

  /// Bytes read per connection per tick (bounds per-tick work so one noisy
  /// connection cannot starve the others).
  size_t read_chunk_bytes = 64 * 1024;
};

/// Monotonic server counters. Atomics with relaxed ordering: written only
/// by the event-loop thread, readable from any thread (metrics scrapes
/// race with serving by design).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};  ///< over max_connections
  std::atomic<uint64_t> connections_dropped{0};   ///< backpressure / faults
  std::atomic<uint64_t> connections_closed{0};    ///< orderly peer close
  std::atomic<uint64_t> connections_active{0};    ///< gauge
  std::atomic<uint64_t> requests_decoded{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> batches{0};           ///< ExecuteBatch calls
  std::atomic<uint64_t> batched_requests{0};  ///< point ops through batches
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  /// Log2 batch-size histogram: bucket i counts batches of size in
  /// [2^i, 2^(i+1)); sizes beyond the last bucket land in it.
  static constexpr int kBatchBuckets = 12;
  std::atomic<uint64_t> batch_size_hist[kBatchBuckets] = {};
};

class Server : public obs::Observable {
 public:
  /// `store` must outlive the server. If it is a ShardedStore the batch
  /// path is used; any other KVStore is driven op-by-op (still pipelined).
  Server(KVStore* store, ServerOptions options);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the event-loop thread. The bound port is
  /// available from port() once Start returns.
  Status Start();

  /// Graceful shutdown: stop accepting, let the loop finish its current
  /// tick (no batch is abandoned half-executed), flush what the peers will
  /// take of the pending responses, close every connection, join the loop
  /// thread, and drain the store (ShardedStore::Drain flushes dirty Secure
  /// Cache state). Idempotent.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }
  const ServerStats& stats() const { return stats_; }

  /// "accepted", "dropped", "requests_decoded", "protocol_errors",
  /// "batch_size_le_N", ... — registered under "net." in the per-store
  /// MetricsRegistry by callers.
  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  struct Connection;

  void Loop();
  void Accept();
  /// Read what's ready on `conn`; returns false if the connection died.
  bool ReadInput(Connection* conn);
  /// Decode + execute + encode for every connection with buffered input.
  void ProcessTick(std::vector<Connection*>* ready);
  /// Try to write conn->out; arms EPOLLOUT on short writes. Returns false
  /// if the connection died (error, torn-write fault, backpressure cap).
  bool FlushOutput(Connection* conn);
  void CloseConnection(Connection* conn);
  void RecordBatchSize(size_t n);

  KVStore* store_;
  ShardedStore* sharded_;  ///< non-null iff store_ is sharded
  OrderedKVStore* ordered_;  ///< non-null iff store_ supports RangeScan
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd Stop() pokes to leave epoll_wait
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread loop_;

  std::vector<std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 0;
  ServerStats stats_;
};

}  // namespace aria::net
