// Multi-loop epoll TCP server for the Aria wire protocol (DESIGN.md §11,
// §12).
//
// The server runs ServerOptions::num_loops independent epoll event loops,
// each on its own thread with its own connection set, buffers and
// counters. Loop 0 additionally owns the listen socket and hands accepted
// fds to the other loops round-robin (eventfd wake + per-loop inbox), so
// connection load is balanced deterministically regardless of kernel
// hashing. Within a loop the design is unchanged from the single-loop
// server: each tick reads all ready connections, decodes every complete
// frame, and executes the decoded point operations as ONE shard-grouped
// batch through ShardedStore::ExecuteBatch — the network analog of the
// paper's §V-B boundary-crossing amortization: N pipelined requests cost
// one shard-lock acquisition per touched shard instead of N. Batches from
// different loops execute concurrently against disjoint shard locks; range
// scans act as batch barriers (they cross shards), so per-connection
// request order is preserved exactly. Multi-key frames (MULTIGET /
// MULTIPUT / ATOMIC_RMW) are barriers too: each one executes as a single
// ShardedStore::ExecuteAtomicBatch unit, so a whole client batch commits
// (or aborts) atomically under the canonical shard-lock order.
//
// Untrusted clients get the RecordCodec treatment: every frame is decoded
// under hard bounds (net/protocol.h), a malformed frame earns one
// ProtocolError response and a close, and both per-connection buffers are
// capped — input by the max frame size, output by
// ServerOptions::max_output_buffer_bytes. A client that stops reading
// while pipelining (slow client) hits the output cap and is disconnected
// (`connections_dropped`), so server memory stays bounded no matter what
// the peer does.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/kv_store.h"
#include "obs/metrics.h"

namespace aria {
class ShardedStore;
}  // namespace aria

namespace aria::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port from port()

  /// Number of epoll event-loop threads. Loop 0 accepts and hands fds to
  /// the loops round-robin; each loop then owns its connections outright.
  /// 1 reproduces the original single-loop server exactly.
  uint32_t num_loops = 1;

  /// Accepted connections beyond this (summed over every loop) are closed
  /// immediately (`connections_rejected`).
  int max_connections = 64;

  /// Backpressure cap per connection: one whose pending (unsent) responses
  /// exceed this is dropped (`connections_dropped`).
  size_t max_output_buffer_bytes = 1 << 20;

  /// Bytes read per connection per tick (bounds per-tick work so one noisy
  /// connection cannot starve the others on its loop).
  size_t read_chunk_bytes = 64 * 1024;
};

/// Monotonic per-loop counters. Atomics with relaxed ordering: written only
/// by the owning event-loop thread, readable from any thread (metrics
/// scrapes race with serving by design).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};  ///< over max_connections
  std::atomic<uint64_t> connections_dropped{0};   ///< backpressure / faults
  std::atomic<uint64_t> connections_closed{0};    ///< orderly peer close
  std::atomic<uint64_t> connections_active{0};    ///< gauge
  std::atomic<uint64_t> requests_decoded{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> batches{0};           ///< ExecuteBatch calls
  std::atomic<uint64_t> batched_requests{0};  ///< point ops through batches
  std::atomic<uint64_t> scans{0};
  /// Multi-key frames (kMultiGet / kMultiPut / kAtomicRmw): frames served,
  /// ops carried inside them, and the per-kind frame split.
  std::atomic<uint64_t> multiop_frames{0};
  std::atomic<uint64_t> multiop_ops{0};
  std::atomic<uint64_t> multigets{0};
  std::atomic<uint64_t> multiputs{0};
  std::atomic<uint64_t> atomic_rmws{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  /// CPU microseconds the loop thread has burned so far
  /// (CLOCK_THREAD_CPUTIME_ID), refreshed at every tick boundary and once
  /// more at thread exit. The scaling bench derives its per-loop makespan
  /// from this — the same accounting Driver::RunThreads uses (DESIGN.md
  /// §8), so scaling is measurable even on a single-core CI host.
  std::atomic<uint64_t> busy_micros{0};
  /// Log2 batch-size histogram: bucket i counts batches of size in
  /// [2^i, 2^(i+1)); sizes beyond the last bucket land in it.
  static constexpr int kBatchBuckets = 12;
  std::atomic<uint64_t> batch_size_hist[kBatchBuckets] = {};
};

class Server : public obs::Observable {
 public:
  /// `store` must outlive the server. If it is a ShardedStore the batch
  /// path is used; any other KVStore is driven op-by-op (still pipelined).
  Server(KVStore* store, ServerOptions options);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn every event-loop thread. The bound port is
  /// available from port() once Start returns.
  Status Start();

  /// Graceful shutdown: stop accepting, let every loop finish its current
  /// tick (no batch is abandoned half-executed), flush what the peers will
  /// take of the pending responses, close every connection, join all loop
  /// threads, and drain the store (ShardedStore::Drain flushes dirty Secure
  /// Cache state). Idempotent.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }
  uint32_t num_loops() const { return options_.num_loops; }
  /// Counters of loop `i` alone (i < num_loops()).
  const ServerStats& loop_stats(uint32_t i) const;

  /// Aggregate counters under their plain names ("requests_decoded",
  /// "batch_size_le_N", ...) plus the same set per loop under "loopN."
  /// and a "num_loops" gauge. Registered under "net." in the per-store
  /// MetricsRegistry by callers; the net-loop-conservation law
  /// (obs/invariants.h) re-derives every aggregate from the loop sums.
  /// Each loop's counters are read exactly once per collection, so the
  /// per-loop values and the aggregates are always mutually consistent
  /// even while serving.
  void CollectMetrics(obs::MetricSink* sink) const override;

 private:
  struct Connection;
  struct EventLoop;

  void Accept(EventLoop* loop);

  KVStore* store_;
  ShardedStore* sharded_;  ///< non-null iff store_ is sharded
  OrderedKVStore* ordered_;  ///< non-null iff store_ supports RangeScan
  ServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  /// Round-robin accept cursor (only touched by the accept loop's thread).
  uint64_t next_loop_ = 0;
  /// Total live connections across loops (admission control) — includes
  /// fds handed off but not yet adopted by their loop.
  std::atomic<int> total_connections_{0};
  std::atomic<uint64_t> next_conn_id_{0};
};

}  // namespace aria::net
