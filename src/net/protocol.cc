#include "net/protocol.h"

#include <cstring>

namespace aria::net {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint16_t GetU16(const char* p) {
  const auto* b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

bool ValidOp(uint8_t op) {
  return op >= static_cast<uint8_t>(OpCode::kGet) &&
         op <= static_cast<uint8_t>(OpCode::kAtomicRmw);
}

}  // namespace

void EncodeRequest(const Request& req, std::string* out) {
  if (IsMultiOp(req.op)) {
    // Multi-key frame: fixed header with key_len = 0 and aux = op count,
    // then the count-prefixed entries.
    const bool with_values = req.op != OpCode::kMultiGet;
    uint64_t body = kRequestFixedBytes;
    for (const MultiOp& op : req.ops) {
      body += 2 + op.key.size() + (with_values ? 4 + op.value.size() : 0);
    }
    PutU32(out, static_cast<uint32_t>(body));
    out->push_back(static_cast<char>(req.op));
    PutU16(out, 0);
    PutU32(out, static_cast<uint32_t>(req.ops.size()));
    for (const MultiOp& op : req.ops) {
      PutU16(out, static_cast<uint16_t>(op.key.size()));
      if (with_values) PutU32(out, static_cast<uint32_t>(op.value.size()));
      out->append(op.key);
      if (with_values) out->append(op.value);
    }
    return;
  }
  const uint32_t key_len = static_cast<uint32_t>(req.key.size());
  uint32_t aux = 0;
  uint32_t value_len = 0;
  if (req.op == OpCode::kPut) {
    value_len = static_cast<uint32_t>(req.value.size());
    aux = value_len;
  } else if (req.op == OpCode::kScan) {
    aux = req.scan_limit;
  }
  PutU32(out, kRequestFixedBytes + key_len + value_len);
  out->push_back(static_cast<char>(req.op));
  PutU16(out, static_cast<uint16_t>(key_len));
  PutU32(out, aux);
  out->append(req.key);
  if (req.op == OpCode::kPut) out->append(req.value);
}

void EncodeResponse(WireStatus status, std::string_view payload,
                    std::string* out) {
  if (payload.size() > kMaxResponseBodyBytes - kResponseFixedBytes) {
    payload = payload.substr(0, kMaxResponseBodyBytes - kResponseFixedBytes);
  }
  PutU32(out, kResponseFixedBytes + static_cast<uint32_t>(payload.size()));
  out->push_back(static_cast<char>(status));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

DecodeResult DecodeRequest(const char* data, size_t size, size_t* consumed,
                           Request* req, std::string* error) {
  if (size < kLengthPrefixBytes) return DecodeResult::kNeedMore;
  const uint32_t body_len = GetU32(data);
  // Bound the declared length BEFORE waiting for the bytes: a huge body_len
  // must fail now, not after the peer has made us buffer it. The prefix
  // alone can only be checked against the multi-op ceiling (the opcode is
  // not visible yet); the tighter single-op bound applies the moment the
  // opcode byte arrives, below.
  if (body_len < kRequestFixedBytes || body_len > kMaxMultiRequestBodyBytes) {
    *error = "request body length " + std::to_string(body_len) +
             " outside [" + std::to_string(kRequestFixedBytes) + ", " +
             std::to_string(kMaxMultiRequestBodyBytes) + "]";
    return DecodeResult::kError;
  }
  if (size > kLengthPrefixBytes) {
    const uint8_t op0 = static_cast<uint8_t>(data[kLengthPrefixBytes]);
    if (!ValidOp(op0)) {
      *error = "unknown opcode " + std::to_string(op0);
      return DecodeResult::kError;
    }
    if (!IsMultiOp(static_cast<OpCode>(op0)) &&
        body_len > kMaxRequestBodyBytes) {
      *error = "request body length " + std::to_string(body_len) +
               " exceeds single-op bound " +
               std::to_string(kMaxRequestBodyBytes);
      return DecodeResult::kError;
    }
  }
  if (size < kLengthPrefixBytes + body_len) return DecodeResult::kNeedMore;

  const char* body = data + kLengthPrefixBytes;
  const uint8_t op = static_cast<uint8_t>(body[0]);
  const uint16_t key_len = GetU16(body + 1);
  const uint32_t aux = GetU32(body + 3);
  if (key_len > kMaxKeyBytes) {
    *error = "key length " + std::to_string(key_len) + " exceeds " +
             std::to_string(kMaxKeyBytes);
    return DecodeResult::kError;
  }

  if (IsMultiOp(static_cast<OpCode>(op))) {
    // Multi-key frame: key_len must be 0, aux is the op count, and the
    // count-prefixed entries must tile the body exactly. All offset math
    // is u64 so a hostile count x entry-size product cannot wrap.
    if (key_len != 0) {
      *error = "multi-op frame carries a header key";
      return DecodeResult::kError;
    }
    if (aux > kMaxBatchOps) {
      *error = "batch op count " + std::to_string(aux) + " exceeds " +
               std::to_string(kMaxBatchOps);
      return DecodeResult::kError;
    }
    const bool with_values = static_cast<OpCode>(op) != OpCode::kMultiGet;
    std::vector<MultiOp> ops;
    ops.reserve(aux);
    uint64_t off = kRequestFixedBytes;
    for (uint32_t i = 0; i < aux; ++i) {
      const uint64_t header = with_values ? 6 : 2;
      if (off + header > body_len) {
        *error = "multi-op entry " + std::to_string(i) +
                 " header truncated";
        return DecodeResult::kError;
      }
      const uint16_t klen = GetU16(body + off);
      const uint32_t vlen = with_values ? GetU32(body + off + 2) : 0;
      off += header;
      if (klen == 0 || klen > kMaxKeyBytes) {
        *error = "multi-op entry key length " + std::to_string(klen) +
                 " outside [1, " + std::to_string(kMaxKeyBytes) + "]";
        return DecodeResult::kError;
      }
      if (vlen > kMaxValueBytes) {
        *error = "multi-op entry value length " + std::to_string(vlen) +
                 " exceeds " + std::to_string(kMaxValueBytes);
        return DecodeResult::kError;
      }
      if (off + klen + vlen > body_len) {
        *error = "multi-op entry " + std::to_string(i) + " bytes truncated";
        return DecodeResult::kError;
      }
      MultiOp m;
      m.key.assign(body + off, klen);
      m.value.assign(body + off + klen, vlen);
      ops.push_back(std::move(m));
      off += static_cast<uint64_t>(klen) + vlen;
    }
    if (off != body_len) {
      *error = "multi-op entries do not tile the body (" +
               std::to_string(off) + " vs " + std::to_string(body_len) + ")";
      return DecodeResult::kError;
    }
    req->op = static_cast<OpCode>(op);
    req->key.clear();
    req->value.clear();
    req->scan_limit = 0;
    req->ops = std::move(ops);
    *consumed = kLengthPrefixBytes + body_len;
    return DecodeResult::kFrame;
  }

  uint32_t value_len = 0;
  switch (static_cast<OpCode>(op)) {
    case OpCode::kPut:
      if (aux > kMaxValueBytes) {
        *error = "value length " + std::to_string(aux) + " exceeds " +
                 std::to_string(kMaxValueBytes);
        return DecodeResult::kError;
      }
      value_len = aux;
      break;
    case OpCode::kScan:
      if (aux > kMaxScanLimit) {
        *error = "scan limit " + std::to_string(aux) + " exceeds " +
                 std::to_string(kMaxScanLimit);
        return DecodeResult::kError;
      }
      break;
    case OpCode::kGet:
    case OpCode::kDelete:
    case OpCode::kPing:
      if (aux != 0) {
        *error = "non-zero aux on " + std::string(OpCodeName(
                     static_cast<OpCode>(op)));
        return DecodeResult::kError;
      }
      break;
    case OpCode::kMultiGet:
    case OpCode::kMultiPut:
    case OpCode::kAtomicRmw:
      break;  // unreachable: multi-op frames returned above
  }

  // The declared pieces must tile the body exactly; any slack could hide
  // bytes the decoder never validated.
  const uint64_t expected = static_cast<uint64_t>(kRequestFixedBytes) +
                            key_len + value_len;
  if (expected != body_len) {
    *error = "body length " + std::to_string(body_len) +
             " does not match declared key/value lengths (" +
             std::to_string(expected) + ")";
    return DecodeResult::kError;
  }

  // Empty keys are meaningless for point ops; only a scan may start from
  // the beginning of the keyspace, and ping carries no key at all.
  const OpCode opc = static_cast<OpCode>(op);
  if (key_len == 0 && (opc == OpCode::kGet || opc == OpCode::kPut ||
                       opc == OpCode::kDelete)) {
    *error = "zero-length key";
    return DecodeResult::kError;
  }
  if (opc == OpCode::kPing && key_len != 0) {
    *error = "ping carries a key";
    return DecodeResult::kError;
  }

  req->op = opc;
  req->key.assign(body + kRequestFixedBytes, key_len);
  req->value.assign(body + kRequestFixedBytes + key_len, value_len);
  req->scan_limit = opc == OpCode::kScan ? aux : 0;
  req->ops.clear();
  *consumed = kLengthPrefixBytes + body_len;
  return DecodeResult::kFrame;
}

DecodeResult DecodeResponse(const char* data, size_t size, size_t* consumed,
                            Response* resp, std::string* error) {
  if (size < kLengthPrefixBytes) return DecodeResult::kNeedMore;
  const uint32_t body_len = GetU32(data);
  if (body_len < kResponseFixedBytes || body_len > kMaxResponseBodyBytes) {
    *error = "response body length " + std::to_string(body_len) +
             " outside [" + std::to_string(kResponseFixedBytes) + ", " +
             std::to_string(kMaxResponseBodyBytes) + "]";
    return DecodeResult::kError;
  }
  if (size < kLengthPrefixBytes + body_len) return DecodeResult::kNeedMore;

  const char* body = data + kLengthPrefixBytes;
  const uint8_t status = static_cast<uint8_t>(body[0]);
  if (status > static_cast<uint8_t>(WireStatus::kProtocolError)) {
    *error = "unknown status " + std::to_string(status);
    return DecodeResult::kError;
  }
  const uint32_t payload_len = GetU32(body + 1);
  if (static_cast<uint64_t>(payload_len) + kResponseFixedBytes != body_len) {
    *error = "payload length " + std::to_string(payload_len) +
             " does not match body length " + std::to_string(body_len);
    return DecodeResult::kError;
  }
  resp->status = static_cast<WireStatus>(status);
  resp->payload.assign(body + kResponseFixedBytes, payload_len);
  *consumed = kLengthPrefixBytes + body_len;
  return DecodeResult::kFrame;
}

size_t EncodeScanPayload(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    size_t max_payload_bytes, std::string* out) {
  const size_t count_pos = out->size();
  PutU32(out, 0);
  size_t encoded = 0;
  for (const auto& [key, value] : pairs) {
    const size_t pair_bytes = 6 + key.size() + value.size();
    if (out->size() - count_pos + pair_bytes > max_payload_bytes) break;
    PutU16(out, static_cast<uint16_t>(key.size()));
    PutU32(out, static_cast<uint32_t>(value.size()));
    out->append(key);
    out->append(value);
    encoded++;
  }
  // Patch the count in place now that truncation is known.
  const uint32_t n = static_cast<uint32_t>(encoded);
  (*out)[count_pos] = static_cast<char>(n & 0xff);
  (*out)[count_pos + 1] = static_cast<char>((n >> 8) & 0xff);
  (*out)[count_pos + 2] = static_cast<char>((n >> 16) & 0xff);
  (*out)[count_pos + 3] = static_cast<char>((n >> 24) & 0xff);
  return encoded;
}

Status DecodeScanPayload(
    std::string_view payload,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (payload.size() < 4) {
    return Status::InvalidArgument("scan payload shorter than its count");
  }
  const uint32_t count = GetU32(payload.data());
  if (count > kMaxScanLimit) {
    return Status::InvalidArgument("scan payload count exceeds limit bound");
  }
  size_t off = 4;
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < 6) {
      return Status::InvalidArgument("scan payload truncated at pair header");
    }
    const uint16_t key_len = GetU16(payload.data() + off);
    const uint32_t value_len = GetU32(payload.data() + off + 2);
    off += 6;
    if (key_len > kMaxKeyBytes || value_len > kMaxValueBytes) {
      return Status::InvalidArgument("scan payload pair exceeds bounds");
    }
    if (payload.size() - off < static_cast<size_t>(key_len) + value_len) {
      return Status::InvalidArgument("scan payload truncated at pair bytes");
    }
    out->emplace_back(std::string(payload.substr(off, key_len)),
                      std::string(payload.substr(off + key_len, value_len)));
    off += static_cast<size_t>(key_len) + value_len;
  }
  if (off != payload.size()) {
    return Status::InvalidArgument("scan payload has trailing bytes");
  }
  return Status::OK();
}

bool EncodeMultiResultPayload(const std::vector<MultiResult>& results,
                              size_t max_payload_bytes, std::string* out) {
  uint64_t need = 4;
  for (const MultiResult& r : results) need += 5 + r.value.size();
  if (need > max_payload_bytes) return false;
  PutU32(out, static_cast<uint32_t>(results.size()));
  for (const MultiResult& r : results) {
    out->push_back(static_cast<char>(r.status));
    PutU32(out, static_cast<uint32_t>(r.value.size()));
    out->append(r.value);
  }
  return true;
}

Status DecodeMultiResultPayload(std::string_view payload,
                                std::vector<MultiResult>* out) {
  out->clear();
  if (payload.size() < 4) {
    return Status::InvalidArgument("multi-op payload shorter than its count");
  }
  const uint32_t count = GetU32(payload.data());
  if (count > kMaxBatchOps) {
    return Status::InvalidArgument("multi-op payload count exceeds bound");
  }
  size_t off = 4;
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < 5) {
      return Status::InvalidArgument(
          "multi-op payload truncated at record header");
    }
    const uint8_t status = static_cast<uint8_t>(payload[off]);
    if (status > static_cast<uint8_t>(WireStatus::kProtocolError)) {
      return Status::InvalidArgument("multi-op payload has unknown status");
    }
    const uint32_t value_len = GetU32(payload.data() + off + 1);
    off += 5;
    if (value_len > kMaxValueBytes) {
      return Status::InvalidArgument("multi-op payload value exceeds bound");
    }
    if (payload.size() - off < value_len) {
      return Status::InvalidArgument(
          "multi-op payload truncated at record bytes");
    }
    MultiResult r;
    r.status = static_cast<WireStatus>(status);
    r.value.assign(payload.substr(off, value_len));
    out->push_back(std::move(r));
    off += value_len;
  }
  if (off != payload.size()) {
    return Status::InvalidArgument("multi-op payload has trailing bytes");
  }
  return Status::OK();
}

WireStatus ToWire(const Status& status) {
  return static_cast<WireStatus>(status.code());
}

Status FromWire(WireStatus status, std::string message) {
  switch (status) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kNotFound:
      return Status::NotFound(std::move(message));
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case WireStatus::kCapacityExceeded:
      return Status::CapacityExceeded(std::move(message));
    case WireStatus::kIntegrityViolation:
      return Status::IntegrityViolation(std::move(message));
    case WireStatus::kInternal:
      return Status::Internal(std::move(message));
    case WireStatus::kProtocolError:
      return Status::Internal("protocol error: " + message);
  }
  return Status::Internal("unknown wire status");
}

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kGet:
      return "GET";
    case OpCode::kPut:
      return "PUT";
    case OpCode::kDelete:
      return "DELETE";
    case OpCode::kScan:
      return "SCAN";
    case OpCode::kPing:
      return "PING";
    case OpCode::kMultiGet:
      return "MULTIGET";
    case OpCode::kMultiPut:
      return "MULTIPUT";
    case OpCode::kAtomicRmw:
      return "ATOMIC_RMW";
  }
  return "?";
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "Ok";
    case WireStatus::kNotFound:
      return "NotFound";
    case WireStatus::kInvalidArgument:
      return "InvalidArgument";
    case WireStatus::kCapacityExceeded:
      return "CapacityExceeded";
    case WireStatus::kIntegrityViolation:
      return "IntegrityViolation";
    case WireStatus::kInternal:
      return "Internal";
    case WireStatus::kProtocolError:
      return "ProtocolError";
  }
  return "?";
}

}  // namespace aria::net
