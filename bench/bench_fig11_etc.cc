// Figure 11 — "Throughput with Facebook ETC": the production-workload
// emulation (40% tiny / 55% small / 5% large values, zipf 0.99 on
// tiny+small, uniform on large) across read ratios {0,50,95,100}%, with a
// hash-index panel (Baseline, Aria w/o Cache, ShieldStore, Aria) and a
// B-tree panel (Baseline, Aria w/o Cache, Aria).
//
// Expected shape: Aria above ShieldStore at every read ratio (~32% average
// in the paper); Aria w/o Cache above ShieldStore at 0% reads (root-update
// cost) but below it as reads dominate.
#include "bench_common.h"
#include "workload/etc.h"

namespace ariabench {
namespace {

constexpr double kReadRatios[] = {0.0, 0.50, 0.95, 1.00};

void RunPoint(benchmark::State& state, Scheme scheme, IndexKind index,
              double read_ratio) {
  uint64_t keys = Keys(10e6);
  std::string sig = std::string("fig11/") + SchemeName(scheme) +
                    (index == IndexKind::kBTree ? "/tree" : "/hash");
  EtcSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = read_ratio;
  EtcWorkload wl(spec);

  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) {
        return CreateStore(PaperOptions(scheme, keys, index), b);
      },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(
            store, keys, [&wl](uint64_t id) { return wl.ValueSizeFor(id); });
      });

  uint64_t ops = index == IndexKind::kBTree ? Ops(30000) : Ops(200000);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, ops);
}

void Register() {
  for (Scheme scheme : {Scheme::kBaseline, Scheme::kAriaNoCache,
                        Scheme::kShieldStore, Scheme::kAria}) {
    for (double rr : kReadRatios) {
      std::string name = std::string("Fig11/hash/") + SchemeName(scheme) +
                         "/rd:" + std::to_string(static_cast<int>(rr * 100));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [scheme, rr](benchmark::State& st) {
            RunPoint(st, scheme, IndexKind::kHash, rr);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (Scheme scheme :
       {Scheme::kBaseline, Scheme::kAriaNoCache, Scheme::kAria}) {
    for (double rr : kReadRatios) {
      std::string name = std::string("Fig11/tree/") + SchemeName(scheme) +
                         "/rd:" + std::to_string(static_cast<int>(rr * 100));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [scheme, rr](benchmark::State& st) {
            RunPoint(st, scheme, IndexKind::kBTree, rr);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
