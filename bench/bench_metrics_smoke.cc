// Metrics smoke bench: runs a small skewed YCSB-A mix on the flagship
// Aria-H configuration, audits every cross-layer conservation law
// (DESIGN.md §9), and drops a BENCH_metrics_smoke.json artifact with the
// full metric snapshot — the reference example of the observability
// pipeline end to end.
//
//   ./build/bench/bench_metrics_smoke [ops] [out.json]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/store_factory.h"
#include "obs/invariants.h"
#include "obs/json.h"
#include "workload/driver.h"

using namespace aria;

int main(int argc, char** argv) {
  uint64_t ops = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  std::string out_path = argc > 2 ? argv[2] : "BENCH_metrics_smoke.json";

  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = 1 << 16;
  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore: %s\n", st.ToString().c_str());
    return 1;
  }

  Driver driver(/*seed=*/7);
  uint64_t keys = options.keyspace / 2;
  st = driver.Prepopulate(bundle.store.get(), keys, 64);
  if (!st.ok()) {
    std::fprintf(stderr, "Prepopulate: %s\n", st.ToString().c_str());
    return 1;
  }

  YcsbSpec spec;  // YCSB-A, zipfian 0.99 — the paper's skewed headline mix
  spec.keyspace = keys;
  spec.read_ratio = 0.5;
  spec.value_size = 64;
  spec.skewness = 0.99;
  auto run = driver.RunYcsb(bundle.store.get(), bundle.enclave.get(), spec,
                            ops);
  if (!run.ok()) {
    std::fprintf(stderr, "RunYcsb: %s\n", run.status().ToString().c_str());
    return 1;
  }

  obs::InvariantReport report = bundle.CheckInvariants();
  std::printf("%s\n", report.ToString().c_str());
  if (!report.ok()) return 1;

  obs::Snapshot snap = bundle.Metrics();
  std::string json = obs::BenchArtifactJson(
      "metrics_smoke", bundle.label,
      {{"ops", static_cast<double>(run.value().ops)},
       {"keys", static_cast<double>(keys)},
       {"wall_seconds", run.value().wall_seconds},
       {"sim_seconds", run.value().sim_seconds},
       {"laws_checked", static_cast<double>(report.laws_checked.size())}},
      snap);
  st = obs::WriteFile(out_path, json);
  if (!st.ok()) {
    std::fprintf(stderr, "WriteFile: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu metrics)\n", out_path.c_str(), snap.size());
  return 0;
}
