// Figure 15 — "Performance on different branch number of the MT": Aria-H
// with Merkle tree arity swept over {2,4,8,10,12,14,16}, one MT, 95% reads,
// 16-byte values, under both skewed and uniform traffic.
//
// Expected shape (skew): rising from arity 2 (bigger nodes amortize cache
// metadata, so more counters fit in the Secure Cache and the tree gets
// shorter) to a sweet spot around 8-12, then declining as per-node MAC
// computation and the untrusted->EPC node copy dominate. Under uniform
// traffic (swap stopped, one verification per access) throughput declines
// monotonically with node size.
#include "bench_common.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

constexpr size_t kArities[] = {2, 4, 8, 10, 12, 14, 16};

void RunPoint(benchmark::State& state, size_t arity, bool skew) {
  uint64_t keys = Keys(10e6);
  std::string sig = std::string("fig15/") + std::to_string(arity);
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) {
        StoreOptions o = PaperOptions(Scheme::kAria, keys);
        o.arity = arity;
        return CreateStore(o, b);
      },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, 16);
      });
  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = 0.95;
  spec.value_size = 16;
  spec.distribution =
      skew ? KeyDistribution::kZipfian : KeyDistribution::kUniform;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(250000));
}

void Register() {
  for (size_t arity : kArities) {
    for (bool skew : {true, false}) {
      std::string name = std::string("Fig15/") + (skew ? "skew" : "uniform") +
                         "/arity:" + std::to_string(arity);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [arity, skew](benchmark::State& st) { RunPoint(st, arity, skew); })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
