// §VI-D4 "Memory Consumption Analysis" — prints the per-KV memory
// accounting the paper gives in prose, both analytically (from the format
// definitions) and measured from a live store.
//
//   ./build/bench/bench_memory_analysis [keys]
#include <cstdio>
#include <cstdlib>

#include "core/aria_hash.h"
#include "core/store_factory.h"
#include "metadata/counter_manager.h"
#include "workload/driver.h"

using namespace aria;

int main(int argc, char** argv) {
  uint64_t keys = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000;

  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.keyspace = keys;
  StoreBundle bundle;
  if (!CreateStore(options, &bundle).ok()) return 1;
  Driver driver;
  if (!driver.Prepopulate(bundle.store.get(), keys, 16).ok()) return 1;

  std::printf("== Memory consumption analysis (SVI-D4), %llu keys ==\n\n",
              (unsigned long long)keys);
  std::printf("Analytic per-KV security metadata (paper):\n");
  std::printf("  counter                16 B\n");
  std::printf("  MAC                    16 B\n");
  std::printf("  RedPtr                  8 B\n");
  std::printf("  record header           4 B (k_len, v_len)\n");
  std::printf("  index entry header     16 B (next ptr + key hint, Aria-H)\n");
  std::printf("  MT inner levels       ~%.1f B (arity-8 geometric series)\n",
              16.0 / 7.0);

  CounterManager* cm = bundle.counter_manager();
  const CounterManagerStats& cs = cm->stats();
  auto* hash = static_cast<AriaHash*>(bundle.store.get());
  const sgx::SgxStats& sgx = bundle.enclave->stats();
  SecureCacheStats cache = cm->CacheStats();

  std::printf("\nMeasured, untrusted memory:\n");
  std::printf("  Merkle tree (counters + MACs): %8.1f MB  (%.1f B/key)\n",
              cs.untrusted_mt_bytes / 1048576.0,
              static_cast<double>(cs.untrusted_mt_bytes) / keys);

  std::printf("\nMeasured, EPC (trusted):\n");
  std::printf("  total in use:                  %8.1f MB\n",
              bundle.enclave->trusted_bytes_in_use() / 1048576.0);
  std::printf("  secure cache slots:            %8.1f MB\n",
              cache.slot_bytes / 1048576.0);
  std::printf("  secure cache pinned levels:    %8.1f MB\n",
              cache.pinned_bytes / 1048576.0);
  std::printf("  secure cache metadata:         %8.1f MB  (%.1f B/key)\n",
              cache.metadata_bytes / 1048576.0,
              static_cast<double>(cache.metadata_bytes) / keys);
  std::printf("  counter occupation bitmap:     %8.3f MB  (%.2f b/key)\n",
              cs.trusted_bitmap_bytes / 1048576.0,
              8.0 * cs.trusted_bitmap_bytes / keys);
  std::printf("  index bucket counts:           %8.1f MB\n",
              hash->trusted_index_bytes() / 1048576.0);
  std::printf("  peak trusted:                  %8.1f MB (EPC budget %.1f)\n",
              sgx.trusted_bytes_peak / 1048576.0,
              bundle.enclave->epc_budget_bytes() / 1048576.0);

  if (bundle.enclave->trusted_bytes_in_use() >
      bundle.enclave->epc_budget_bytes()) {
    std::printf("\nWARNING: trusted footprint exceeds the EPC budget\n");
    return 1;
  }
  std::printf("\nOK: trusted footprint fits the EPC budget\n");
  return 0;
}
