// Figure 16 — (a) multi-tenant: Aria vs ShieldStore with 2 and 4 tenants
// sharing the platform, each tenant's enclave getting EPC/N (the Secure
// Cache / root array shrink accordingly), keyspace per tenant swept from
// 10M to 50M (scaled); reported number is the average per-tenant
// throughput. On this 1-core host the tenants are measured sequentially —
// the EPC division, not CPU contention, is the effect the paper isolates.
// (b) skewness: Aria vs ShieldStore at 10M keys as zipf skew grows from
// 0.8 to 1.2.
//
// Expected shape: (a) the Aria/ShieldStore gap widens with both tenant
// count and keyspace; (b) Aria's advantage grows with skew (~96% at 1.2 in
// the paper).
#include "bench_common.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

void RunTenantPoint(benchmark::State& state, Scheme scheme, int tenants,
                    double paper_keys) {
  uint64_t keys = Keys(paper_keys);
  std::string sig = std::string("fig16a/") + SchemeName(scheme) + "/" +
                    std::to_string(tenants) + "/" + std::to_string(keys);
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) {
        StoreOptions o = PaperOptions(scheme, keys);
        o.epc_budget_bytes = Epc() / tenants;
        // ShieldStore's root array shrinks with its EPC share.
        uint64_t root_cap = o.epc_budget_bytes * 7 / 10 / 16;
        if (o.shieldstore_buckets > root_cap) {
          o.shieldstore_buckets = root_cap;
          o.num_buckets = root_cap;
        }
        return CreateStore(o, b);
      },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, 16);
      });
  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = 0.95;
  spec.value_size = 16;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(100000));
}

void RunSkewPoint(benchmark::State& state, Scheme scheme, double skewness) {
  uint64_t keys = Keys(10e6);
  std::string sig = std::string("fig16b/") + SchemeName(scheme);
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) { return CreateStore(PaperOptions(scheme, keys), b); },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, 16);
      });
  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = 0.95;
  spec.value_size = 16;
  spec.skewness = skewness;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(250000));
}

void Register() {
  // (a) tenants x keyspace.
  for (Scheme scheme : {Scheme::kAria, Scheme::kShieldStore}) {
    for (int tenants : {1, 2, 4}) {
      for (double pk : {10e6, 20e6, 30e6, 40e6, 50e6}) {
        std::string name =
            std::string("Fig16a/") + SchemeName(scheme) + "-" +
            std::to_string(tenants) +
            "/keysM:" + std::to_string(static_cast<int>(pk / 1e6));
        benchmark::RegisterBenchmark(
            name.c_str(),
            [scheme, tenants, pk](benchmark::State& st) {
              RunTenantPoint(st, scheme, tenants, pk);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  // (b) skewness sweep.
  for (Scheme scheme : {Scheme::kAria, Scheme::kShieldStore}) {
    for (double skew : {0.8, 0.9, 0.95, 0.99, 1.0, 1.2}) {
      std::string name = std::string("Fig16b/") + SchemeName(scheme) +
                         "/skew:" + std::to_string(skew).substr(0, 4);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [scheme, skew](benchmark::State& st) {
            RunSkewPoint(st, scheme, skew);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
