// Atomic multi-key batch amortization bench (DESIGN.md §15): the same
// zipf-0.99 ATOMIC_RMW point-op stream pushed through batch sizes 1, 4, 16
// and 64 on the flagship Aria-H sharded configuration. The §V-B payoff under
// measurement is the counter/Merkle flush amortization — ONE update pass per
// mutated shard per batch instead of one per op — so the headline,
// core.batch_mt_update_passes per point op, must fall STRICTLY as the batch
// size grows (batches cannot touch more shards than they carry ops, and a
// 64-op zipf batch funnels many ops into few hot shards). The run fails if
// the headline is not strictly decreasing, and every size's store must pass
// the full invariant audit.
//
//   ./build/bench/bench_atomic_batch [ops_per_size] [out.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "obs/invariants.h"
#include "obs/json.h"
#include "workload/ycsb.h"
#include "workload/zipf.h"

using namespace aria;

namespace {

constexpr uint32_t kShards = 8;
constexpr uint64_t kKeyspace = 1 << 15;
constexpr size_t kValueSize = 64;
constexpr double kTheta = 0.99;

struct SizeResult {
  size_t batch_size = 0;
  uint64_t ops = 0;
  double wall_seconds = 0;
  uint64_t mt_passes = 0;
  uint64_t shard_touches = 0;
  double passes_per_op = 0;
};

Status RunOneSize(size_t batch_size, uint64_t total_ops, SizeResult* out,
                  obs::Snapshot* last_snapshot) {
  StoreOptions o;
  o.scheme = Scheme::kAria;
  o.index = IndexKind::kHash;
  o.keyspace = kKeyspace;
  o.num_shards = kShards;
  o.seed = 42;
  std::unique_ptr<ShardedStore> store;
  ARIA_RETURN_IF_ERROR(ShardedStore::Create(o, &store));

  for (uint64_t id = 0; id < kKeyspace; ++id) {
    ARIA_RETURN_IF_ERROR(store->Put(MakeKey(id), MakeValue(id, kValueSize)));
  }

  ZipfGenerator zipf(kKeyspace, kTheta, /*seed=*/7);
  const uint64_t batches = (total_ops + batch_size - 1) / batch_size;
  std::vector<std::string> keys(batch_size);
  std::vector<std::string> values(batch_size);
  std::vector<AtomicOp> ops(batch_size);

  const auto start = std::chrono::steady_clock::now();
  uint64_t executed = 0;
  for (uint64_t b = 0; b < batches; ++b) {
    for (size_t i = 0; i < batch_size; ++i) {
      const uint64_t id = zipf.NextKey();
      keys[i] = MakeKey(id);
      values[i] = MakeValue(id, kValueSize, static_cast<uint32_t>(b));
      ops[i] = AtomicOp{};
      ops[i].kind = AtomicOp::Kind::kRmw;
      ops[i].key = Slice(keys[i]);
      ops[i].value = Slice(values[i]);
    }
    ARIA_RETURN_IF_ERROR(store->ExecuteAtomicBatch(ops.data(), batch_size));
    executed += batch_size;
  }
  const auto end = std::chrono::steady_clock::now();

  obs::Snapshot total;
  for (uint32_t s = 0; s < store->num_shards(); ++s) {
    total.Accumulate(store->ShardSnapshot(s));
  }
  out->batch_size = batch_size;
  out->ops = executed;
  out->wall_seconds = std::chrono::duration<double>(end - start).count();
  out->mt_passes = total.Get("core.batch_mt_update_passes");
  out->shard_touches = total.Get("core.batch_shard_touches");
  out->passes_per_op =
      executed > 0 ? static_cast<double>(out->mt_passes) / executed : 0;

  obs::InvariantReport report = store->CheckInvariants();
  if (!report.ok()) {
    return Status::Internal("invariant audit failed at batch size " +
                            std::to_string(batch_size) + ": " +
                            report.ToString());
  }
  *last_snapshot = std::move(total);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t ops =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_atomic_batch.json";
  const size_t sizes[] = {1, 4, 16, 64};

  std::vector<SizeResult> results;
  obs::Snapshot last_snapshot;
  for (size_t b : sizes) {
    SizeResult r;
    Status st = RunOneSize(b, ops, &r, &last_snapshot);
    if (!st.ok()) {
      std::fprintf(stderr, "batch size %zu: %s\n", b, st.ToString().c_str());
      return 1;
    }
    results.push_back(r);
    std::printf(
        "batch=%2zu  ops=%llu  wall=%.3fs  ops/s=%.0f  mt_passes/op=%.4f  "
        "(passes=%llu touches=%llu)\n",
        b, static_cast<unsigned long long>(r.ops), r.wall_seconds,
        r.wall_seconds > 0 ? r.ops / r.wall_seconds : 0, r.passes_per_op,
        static_cast<unsigned long long>(r.mt_passes),
        static_cast<unsigned long long>(r.shard_touches));
  }

  // The headline: flush passes per point op must fall strictly with batch
  // size, or the §V-B amortization regressed.
  bool strictly_decreasing = true;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].passes_per_op >= results[i - 1].passes_per_op) {
      strictly_decreasing = false;
      std::fprintf(stderr,
                   "HEADLINE REGRESSION: mt_passes/op %.4f at batch %zu is "
                   "not below %.4f at batch %zu\n",
                   results[i].passes_per_op, results[i].batch_size,
                   results[i - 1].passes_per_op, results[i - 1].batch_size);
    }
  }

  std::map<std::string, double> fields;
  fields["ops_per_size"] = static_cast<double>(ops);
  fields["shards"] = kShards;
  fields["zipf_theta"] = kTheta;
  fields["headline_strictly_decreasing"] = strictly_decreasing ? 1 : 0;
  for (const SizeResult& r : results) {
    const std::string p = "b" + std::to_string(r.batch_size) + "_";
    fields[p + "mt_passes_per_op"] = r.passes_per_op;
    fields[p + "ops_per_s"] =
        r.wall_seconds > 0 ? r.ops / r.wall_seconds : 0;
    fields[p + "shard_touches"] = static_cast<double>(r.shard_touches);
  }
  const std::string json = obs::BenchArtifactJson(
      "atomic_batch", "Aria-H sharded x" + std::to_string(kShards), fields,
      last_snapshot);
  Status st = obs::WriteFile(out_path, json);
  if (!st.ok()) {
    std::fprintf(stderr, "WriteFile: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return strictly_decreasing ? 0 : 1;
}
