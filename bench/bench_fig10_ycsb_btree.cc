// Figure 10 — "Overall performance with B-tree-based index": same grid as
// Fig. 9 for the tree-capable schemes (Baseline, Aria w/o Cache, Aria).
// ShieldStore cannot run here — its design is welded to chained hashing,
// which is exactly the paper's §III usability argument.
//
// Expected shape: roughly 10x below the hash-index figures (every descent
// step decrypts separator records), with Aria on top under skew.
#include "bench_common.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

constexpr Scheme kSchemes[] = {Scheme::kBaseline, Scheme::kAriaNoCache,
                               Scheme::kAria};
constexpr size_t kValueSizes[] = {16, 128, 512};
constexpr double kReadRatios[] = {0.50, 0.95, 1.00};

void RunPoint(benchmark::State& state, Scheme scheme, size_t value_size,
              bool skew, double read_ratio) {
  uint64_t keys = Keys(10e6);
  std::string sig = std::string("fig10/") + SchemeName(scheme) + "/v" +
                    std::to_string(value_size);
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) {
        return CreateStore(PaperOptions(scheme, keys, IndexKind::kBTree), b);
      },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, value_size);
      });

  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = read_ratio;
  spec.value_size = value_size;
  spec.distribution =
      skew ? KeyDistribution::kZipfian : KeyDistribution::kUniform;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(30000));
}

void Register() {
  for (Scheme scheme : kSchemes) {
    for (size_t vs : kValueSizes) {
      for (bool skew : {true, false}) {
        for (double rr : kReadRatios) {
          std::string name =
              std::string("Fig10/") + SchemeName(scheme) + "-T" +
              (skew ? "/skew" : "/uniform") +
              "/rd:" + std::to_string(static_cast<int>(rr * 100)) +
              "/val:" + std::to_string(vs);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [scheme, vs, skew, rr](benchmark::State& st) {
                RunPoint(st, scheme, vs, skew, rr);
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
