// Shared plumbing for the per-figure benchmark binaries.
//
// Scaling: the paper ran on a 32 GB i7-7700 with 91 MB EPC and keyspaces of
// 2M-134M keys. ARIA_BENCH_SCALE (default 0.125) multiplies both the
// keyspace and the simulated EPC budget, preserving every working-set /
// EPC ratio the figures depend on. ARIA_BENCH_OPS scales the per-point
// operation count (default 1.0). Set ARIA_BENCH_SCALE=1 to run the paper's
// exact sizes (needs ~16 GB RAM and a few hours).
//
// All benchmarks use google-benchmark manual time: the reported time is
// measured wall time PLUS the simulated SGX time (paging, MEE, edge calls),
// so items_per_second is directly comparable to the paper's ops/s axes.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "core/store_factory.h"
#include "metadata/counter_manager.h"
#include "workload/driver.h"

namespace ariabench {

using namespace aria;  // NOLINT — benchmark binaries only

inline double Scale() {
  static double s = [] {
    const char* env = std::getenv("ARIA_BENCH_SCALE");
    double v = env != nullptr ? std::atof(env) : 0.125;
    return v > 0 ? v : 0.125;
  }();
  return s;
}

inline double OpsScale() {
  static double s = [] {
    const char* env = std::getenv("ARIA_BENCH_OPS");
    double v = env != nullptr ? std::atof(env) : 1.0;
    return v > 0 ? v : 1.0;
  }();
  return s;
}

/// Paper keyspace (in keys) scaled down.
inline uint64_t Keys(double paper_keys) {
  double k = paper_keys * Scale();
  return k < 4096 ? 4096 : static_cast<uint64_t>(k);
}

/// Paper EPC budget scaled down.
inline uint64_t Epc() {
  double b = static_cast<double>(sgx::CostModel::kDefaultEpcBytes) * Scale();
  return b < (1 << 20) ? (1 << 20) : static_cast<uint64_t>(b);
}

inline uint64_t Ops(double base) {
  double v = base * OpsScale();
  return v < 1000 ? 1000 : static_cast<uint64_t>(v);
}

/// Build-once store reuse: consecutive benchmark points that share a
/// signature (scheme + sizing + value layout) reuse the same prepopulated
/// store, since repopulating a multi-million-key store dominates runtime.
/// Only one store is kept alive at a time (they are ~GB-sized).
class StoreCache {
 public:
  static StoreCache& Instance() {
    static auto* c = new StoreCache();
    return *c;
  }

  /// Returns the store for `signature`, creating and prepopulating it via
  /// the callbacks if the signature changed. nullptr on failure.
  StoreBundle* Get(const std::string& signature,
                   const std::function<Status(StoreBundle*)>& create,
                   const std::function<Status(KVStore*)>& prepopulate) {
    if (signature == signature_ && bundle_ != nullptr) return bundle_.get();
    bundle_.reset();
    signature_.clear();
    auto bundle = std::make_unique<StoreBundle>();
    Status st = create(bundle.get());
    if (!st.ok()) return nullptr;
    st = prepopulate(bundle->store.get());
    if (!st.ok()) return nullptr;
    bundle_ = std::move(bundle);
    signature_ = signature;
    return bundle_.get();
  }

  void Clear() {
    bundle_.reset();
    signature_.clear();
  }

 private:
  std::string signature_;
  std::unique_ptr<StoreBundle> bundle_;
};

/// Replay `ops` operations and report manual time = wall + simulated.
/// Adds counters: ops_per_s (throughput), sim_share (simulated fraction),
/// page_swaps, and for Aria stores the Secure Cache hit ratio.
inline void ReplayAndReport(benchmark::State& state, StoreBundle* bundle,
                            const std::function<Op()>& next_op,
                            uint64_t ops) {
  if (bundle == nullptr) {
    state.SkipWithError("store construction failed");
    return;
  }
  Driver driver;
  // Warm-up: re-establish the workload's hot set in the Secure Cache /
  // EPC after prepopulation churned it (untimed).
  {
    auto w = driver.Run(bundle->store.get(), bundle->enclave.get(), next_op,
                        ops / 4 + 1);
    if (!w.ok()) {
      state.SkipWithError(w.status().ToString().c_str());
      return;
    }
  }
  uint64_t swaps_before = bundle->enclave->stats().page_swaps;
  for (auto _ : state) {
    auto r = driver.Run(bundle->store.get(), bundle->enclave.get(), next_op,
                        ops);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(r->TotalSeconds());
    state.counters["ops_per_s"] =
        benchmark::Counter(r->Throughput(), benchmark::Counter::kAvgIterations);
    double total = r->TotalSeconds();
    state.counters["sim_share"] =
        benchmark::Counter(total > 0 ? r->sim_seconds / total : 0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * ops));
  state.counters["page_swaps"] = benchmark::Counter(
      static_cast<double>(bundle->enclave->stats().page_swaps - swaps_before));
  if (CounterManager* cm = bundle->counter_manager()) {
    SecureCacheStats cs = cm->CacheStats();
    state.counters["cache_hit"] = benchmark::Counter(cs.HitRatio());
    state.counters["swap_stopped"] =
        benchmark::Counter(cs.swap_stopped ? 1 : 0);
  }
  state.counters["epc_mb"] = benchmark::Counter(
      static_cast<double>(bundle->enclave->trusted_bytes_in_use()) / 1048576.0);
}

/// Store options mirroring the paper's evaluation setup at the current
/// scale: EPC budget, hash-bucket sizing (0.4 buckets/key) and
/// ShieldStore's root array capped at (scaled) 64 MB of EPC.
inline StoreOptions PaperOptions(Scheme scheme, uint64_t keys,
                                 IndexKind index = IndexKind::kHash) {
  StoreOptions o;
  o.scheme = scheme;
  o.index = index;
  o.keyspace = keys;
  o.epc_budget_bytes = Epc();
  uint64_t buckets = keys * 2 / 5;
  if (buckets < 1024) buckets = 1024;
  uint64_t root_cap =
      static_cast<uint64_t>(64.0 * 1048576.0 * Scale()) / 16;
  if (root_cap < 1024) root_cap = 1024;
  o.num_buckets = buckets < root_cap ? buckets : root_cap;
  o.shieldstore_buckets = o.num_buckets;
  return o;
}

inline const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kAria:
      return "Aria";
    case Scheme::kAriaNoCache:
      return "AriaNoCache";
    case Scheme::kShieldStore:
      return "ShieldStore";
    case Scheme::kBaseline:
      return "Baseline";
  }
  return "?";
}

}  // namespace ariabench
