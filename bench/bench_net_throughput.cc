// Skew-aware network load generator (DESIGN.md §11): drives the epoll
// server over loopback with N pipelined client connections replaying a
// YCSB mix, and runs the SAME configuration in-process through
// Driver::RunThreads so the serving-layer overhead is visible side by side
// in one artifact. Default mix is YCSB-C / Zipfian(0.99) — the paper's
// skewed read-heavy headline.
//
// Both runs use the per-thread CPU clock (ThreadCpuSeconds) for service
// time, so "cycles spent per op" is comparable even though the network run
// additionally pays syscalls, framing and the event loop.
//
//   ./build/bench/bench_net_throughput [key=value ...]
//     ops=200000 keys=65536 shards=4 connections=4 depth=16
//     theta=0.99 read_ratio=1.0 value_size=128 out=BENCH_net_throughput.json
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/invariants.h"
#include "obs/json.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace aria;

namespace {

struct Config {
  uint64_t ops = 200'000;  ///< total, split across connections
  uint64_t keys = 65'536;
  uint32_t shards = 4;
  uint64_t connections = 4;
  uint64_t depth = 16;  ///< pipeline depth per connection
  double theta = 0.99;
  double read_ratio = 1.0;  ///< YCSB-C
  size_t value_size = 128;
  uint64_t seed = 42;
  std::string out = "BENCH_net_throughput.json";
};

bool ParseArg(Config* cfg, const std::string& arg) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const std::string key = arg.substr(0, eq);
  const std::string val = arg.substr(eq + 1);
  if (key == "ops") cfg->ops = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "keys") cfg->keys = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "shards")
    cfg->shards = static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
  else if (key == "connections")
    cfg->connections = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "depth") cfg->depth = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "theta") cfg->theta = std::strtod(val.c_str(), nullptr);
  else if (key == "read_ratio")
    cfg->read_ratio = std::strtod(val.c_str(), nullptr);
  else if (key == "value_size")
    cfg->value_size = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "seed") cfg->seed = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "out") cfg->out = val;
  else return false;
  return true;
}

YcsbSpec SpecFor(const Config& cfg, uint64_t thread) {
  YcsbSpec spec;
  spec.keyspace = cfg.keys;
  spec.read_ratio = cfg.read_ratio;
  spec.value_size = cfg.value_size;
  spec.distribution = KeyDistribution::kZipfian;
  spec.skewness = cfg.theta;
  spec.seed = cfg.seed + 7919 * (thread + 1);
  return spec;
}

struct NetRunResult {
  uint64_t ops = 0;
  uint64_t not_found = 0;
  uint64_t errors = 0;
  double wall_seconds = 0.0;
  double client_cpu_seconds = 0.0;  ///< summed over connections
};

/// One connection's worth of the load: replay ops from `wl` with `depth`
/// requests in flight, counting per-thread CPU for the service-time
/// comparison against the in-process run.
void RunConnection(const Config& cfg, uint16_t port, uint64_t thread,
                   uint64_t ops, NetRunResult* out, std::atomic<bool>* failed) {
  YcsbWorkload wl(SpecFor(cfg, thread));
  net::Client client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    failed->store(true);
    return;
  }
  const double cpu0 = ThreadCpuSeconds();
  uint64_t sent = 0, received = 0;
  auto read_one = [&]() {
    net::Response resp;
    if (!client.ReadResponse(&resp).ok()) {
      failed->store(true);
      return false;
    }
    received++;
    if (resp.status == net::WireStatus::kNotFound) out->not_found++;
    else if (resp.status != net::WireStatus::kOk) out->errors++;
    return true;
  };
  while (sent < ops) {
    Op op = wl.Next();
    net::Request req;
    req.key = MakeKey(op.key_id);
    if (op.type == OpType::kGet) {
      req.op = net::OpCode::kGet;
    } else {
      req.op = net::OpCode::kPut;
      req.value = MakeValue(op.key_id, op.value_size);
    }
    if (!client.Send(req).ok()) {
      failed->store(true);
      return;
    }
    sent++;
    if (sent - received >= cfg.depth && !read_one()) return;
  }
  while (received < sent) {
    if (!read_one()) return;
  }
  out->client_cpu_seconds = ThreadCpuSeconds() - cpu0;
  out->ops = received;
  client.Close();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(&cfg, argv[i])) {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (cfg.connections == 0 || cfg.depth == 0 || cfg.shards == 0) {
    std::fprintf(stderr, "connections, depth and shards must be positive\n");
    return 2;
  }

  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = cfg.keys;
  options.num_shards = cfg.shards;
  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore: %s\n", st.ToString().c_str());
    return 1;
  }
  auto* sharded = dynamic_cast<ShardedStore*>(bundle.store.get());
  if (sharded == nullptr) {
    std::fprintf(stderr, "factory did not build a ShardedStore\n");
    return 1;
  }

  Driver driver(cfg.seed);
  st = driver.Prepopulate(bundle.store.get(), cfg.keys, cfg.value_size);
  if (!st.ok()) {
    std::fprintf(stderr, "Prepopulate: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- in-process baseline: same mix, same thread count ---------------------
  auto gen_for_thread = [&cfg](uint64_t thread) -> std::function<Op()> {
    auto wl = std::make_shared<YcsbWorkload>(SpecFor(cfg, thread));
    return [wl]() { return wl->Next(); };
  };
  const uint64_t ops_per_thread = cfg.ops / cfg.connections;
  auto inproc = driver.RunThreads(sharded, gen_for_thread, cfg.connections,
                                  ops_per_thread);
  if (!inproc.ok()) {
    std::fprintf(stderr, "RunThreads: %s\n",
                 inproc.status().ToString().c_str());
    return 1;
  }
  if (!inproc->invariants.ok()) {
    std::fprintf(stderr, "in-process invariants:\n%s\n",
                 inproc->invariants.ToString().c_str());
    return 1;
  }

  // --- network run: same mix through the wire protocol ----------------------
  net::ServerOptions server_options;
  server_options.max_connections =
      static_cast<int>(cfg.connections) + 4;  // headroom for stragglers
  net::Server server(bundle.store.get(), server_options);
  bundle.registry.Register("net", &server);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Start: %s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<NetRunResult> per_conn(cfg.connections);
  std::atomic<bool> failed{false};
  const auto wall0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (uint64_t t = 0; t < cfg.connections; ++t) {
      threads.emplace_back(RunConnection, std::cref(cfg), server.port(), t,
                           ops_per_thread, &per_conn[t], &failed);
    }
    for (auto& th : threads) th.join();
  }
  const double net_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (failed.load()) {
    std::fprintf(stderr, "a client connection failed mid-run\n");
    return 1;
  }

  NetRunResult net_total;
  for (const NetRunResult& r : per_conn) {
    net_total.ops += r.ops;
    net_total.not_found += r.not_found;
    net_total.errors += r.errors;
    net_total.client_cpu_seconds += r.client_cpu_seconds;
  }
  net_total.wall_seconds = net_wall;

  // Metrics snapshot BEFORE Stop so the gauge side still reflects serving;
  // counters are monotonic and survive the shutdown anyway.
  obs::Snapshot snap = bundle.Metrics();
  st = server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Stop: %s\n", st.ToString().c_str());
    return 1;
  }
  obs::InvariantReport report = bundle.CheckInvariants();
  std::printf("%s\n", report.ToString().c_str());
  if (!report.ok()) return 1;

  const double inproc_ops_per_s = inproc->Throughput();
  const double net_ops_per_s =
      net_wall > 0 ? static_cast<double>(net_total.ops) / net_wall : 0.0;
  const uint64_t protocol_errors = snap.Get("net.protocol_errors");

  std::string json = obs::BenchArtifactJson(
      "net_throughput", bundle.label,
      {{"ops", static_cast<double>(cfg.ops)},
       {"keys", static_cast<double>(cfg.keys)},
       {"shards", static_cast<double>(cfg.shards)},
       {"connections", static_cast<double>(cfg.connections)},
       {"pipeline_depth", static_cast<double>(cfg.depth)},
       {"zipf_theta", cfg.theta},
       {"read_ratio", cfg.read_ratio},
       {"value_size", static_cast<double>(cfg.value_size)},
       {"inproc_ops_per_s", inproc_ops_per_s},
       {"inproc_effective_seconds", inproc->effective_seconds},
       {"inproc_busy_seconds", inproc->total_busy_seconds},
       {"net_ops_per_s", net_ops_per_s},
       {"net_wall_seconds", net_total.wall_seconds},
       {"net_client_cpu_seconds", net_total.client_cpu_seconds},
       {"net_ops", static_cast<double>(net_total.ops)},
       {"net_not_found", static_cast<double>(net_total.not_found)},
       {"net_errors", static_cast<double>(net_total.errors)},
       {"protocol_errors", static_cast<double>(protocol_errors)},
       {"laws_checked", static_cast<double>(report.laws_checked.size())}},
      snap);
  st = obs::WriteFile(cfg.out, json);
  if (!st.ok()) {
    std::fprintf(stderr, "WriteFile: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf(
      "in-process: %.0f ops/s (effective)  |  network: %.0f ops/s "
      "(%llu conns x depth %llu, wall %.3fs, client cpu %.3fs)\n",
      inproc_ops_per_s, net_ops_per_s,
      static_cast<unsigned long long>(cfg.connections),
      static_cast<unsigned long long>(cfg.depth), net_total.wall_seconds,
      net_total.client_cpu_seconds);
  std::printf("wrote %s (%zu metrics)\n", cfg.out.c_str(), snap.size());
  if (net_total.errors > 0 || protocol_errors > 0) {
    std::fprintf(stderr, "unexpected errors over the wire\n");
    return 1;
  }
  return 0;
}
