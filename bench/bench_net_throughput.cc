// Skew-aware network load generator (DESIGN.md §11, §12): drives the
// multi-loop epoll server over loopback with N pipelined client connections
// replaying a YCSB mix, and runs the SAME configuration in-process through
// Driver::RunThreads so the serving-layer overhead is visible side by side
// in one artifact. Default mix is YCSB-C / Zipfian(0.99) — the paper's
// skewed read-heavy headline.
//
// A loop-count sweep (on by default) then re-runs the network load against
// fresh stores at 1/2/4/8 event loops, uniform and zipf, and emits
// BENCH_net_scaling.json. Throughput there is reported two ways:
//  * wall ops/s — honest elapsed time, which on a single-core CI host
//    cannot show loop scaling (every thread shares the one core);
//  * effective ops/s — ops / max(total_loop_busy / loops, max_loop_busy),
//    the same thread-CPU makespan model Driver::RunThreads uses (DESIGN.md
//    §8), fed by the server's per-loop busy_micros counters. This is the
//    headline number: it measures how the server's own CPU work divides
//    across loops, which is exactly what more cores would parallelize.
//
//   ./build/bench/bench_net_throughput [key=value ...]
//     ops=200000 keys=65536 shards=4 connections=4 depth=16 loops=1
//     theta=0.99 read_ratio=1.0 value_size=128 seed=42
//     sweep=1 sweep_ops=0 (0 = same as ops)
//     out=BENCH_net_throughput.json scaling_out=BENCH_net_scaling.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_store.h"
#include "core/store_factory.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/invariants.h"
#include "obs/json.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace aria;

namespace {

struct Config {
  uint64_t ops = 200'000;  ///< total, split across connections
  uint64_t keys = 65'536;
  uint32_t shards = 4;
  uint64_t connections = 4;
  uint64_t depth = 16;  ///< pipeline depth per connection
  uint32_t loops = 1;   ///< event loops for the main (non-sweep) run
  double theta = 0.99;
  double read_ratio = 1.0;  ///< YCSB-C
  size_t value_size = 128;
  uint64_t seed = 42;
  bool sweep = true;       ///< run the 1/2/4/8-loop scaling sweep
  uint64_t sweep_ops = 0;  ///< ops per sweep run; 0 = same as `ops`
  std::string out = "BENCH_net_throughput.json";
  std::string scaling_out = "BENCH_net_scaling.json";
};

bool ParseArg(Config* cfg, const std::string& arg) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const std::string key = arg.substr(0, eq);
  const std::string val = arg.substr(eq + 1);
  if (key == "ops") cfg->ops = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "keys") cfg->keys = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "shards")
    cfg->shards = static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
  else if (key == "connections")
    cfg->connections = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "depth") cfg->depth = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "loops")
    cfg->loops = static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
  else if (key == "theta") cfg->theta = std::strtod(val.c_str(), nullptr);
  else if (key == "read_ratio")
    cfg->read_ratio = std::strtod(val.c_str(), nullptr);
  else if (key == "value_size")
    cfg->value_size = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "seed") cfg->seed = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "sweep") cfg->sweep = val != "0";
  else if (key == "sweep_ops")
    cfg->sweep_ops = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "out") cfg->out = val;
  else if (key == "scaling_out") cfg->scaling_out = val;
  else return false;
  return true;
}

YcsbSpec SpecFor(const Config& cfg, KeyDistribution dist, uint64_t thread) {
  YcsbSpec spec;
  spec.keyspace = cfg.keys;
  spec.read_ratio = cfg.read_ratio;
  spec.value_size = cfg.value_size;
  spec.distribution = dist;
  spec.skewness = cfg.theta;
  spec.seed = cfg.seed + 7919 * (thread + 1);
  return spec;
}

/// Drive `ops_total` operations (split across cfg.connections pipelining
/// client threads) against `server` via net::RunLoad, replaying the YCSB
/// mix `dist`. Each connection owns its workload generator, so RunLoad's
/// per-connection request callback stays thread-safe.
net::LoadStats DriveLoad(const Config& cfg, KeyDistribution dist,
                         uint16_t port, uint64_t ops_total) {
  std::vector<std::unique_ptr<YcsbWorkload>> workloads;
  for (uint64_t t = 0; t < cfg.connections; ++t) {
    workloads.push_back(
        std::make_unique<YcsbWorkload>(SpecFor(cfg, dist, t)));
  }
  net::LoadOptions lo;
  lo.port = port;
  lo.connections = static_cast<uint32_t>(cfg.connections);
  lo.depth = static_cast<uint32_t>(cfg.depth);
  lo.ops_per_connection = ops_total / cfg.connections;
  return net::RunLoad(lo, [&workloads](uint64_t conn, uint64_t) {
    Op op = workloads[conn]->Next();
    net::Request req;
    req.key = MakeKey(op.key_id);
    if (op.type == OpType::kGet) {
      req.op = net::OpCode::kGet;
    } else {
      req.op = net::OpCode::kPut;
      req.value = MakeValue(op.key_id, op.value_size);
    }
    return req;
  });
}

/// Per-loop CPU makespan from the server's busy_micros counters: the time
/// the run would take if every loop had its own core (DESIGN.md §8 model).
struct LoopBusy {
  double total_seconds = 0;
  double max_seconds = 0;

  double EffectiveSeconds(uint32_t loops) const {
    return std::max(total_seconds / loops, max_seconds);
  }
};

LoopBusy BusyFrom(const obs::Snapshot& snap, uint32_t loops) {
  LoopBusy busy;
  for (uint32_t l = 0; l < loops; ++l) {
    const double s =
        static_cast<double>(
            snap.Get("net.loop" + std::to_string(l) + ".busy_micros")) *
        1e-6;
    busy.total_seconds += s;
    busy.max_seconds = std::max(busy.max_seconds, s);
  }
  return busy;
}

/// One self-contained over-the-wire run for the scaling sweep: fresh store,
/// fresh server at `loops` event loops, full load, graceful stop, invariant
/// audit (including net-loop-conservation via the bundle registry).
struct SweepOutcome {
  net::LoadStats load;
  LoopBusy busy;
  double eff_ops_per_s = 0;
  double wall_ops_per_s = 0;
  obs::Snapshot snap;
};

bool RunSweepPoint(const Config& cfg, KeyDistribution dist, uint32_t loops,
                   uint64_t ops_total, SweepOutcome* out) {
  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = cfg.keys;
  options.num_shards = cfg.shards;
  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "sweep CreateStore: %s\n", st.ToString().c_str());
    return false;
  }
  Driver driver(cfg.seed);
  st = driver.Prepopulate(bundle.store.get(), cfg.keys, cfg.value_size);
  if (!st.ok()) {
    std::fprintf(stderr, "sweep Prepopulate: %s\n", st.ToString().c_str());
    return false;
  }

  net::ServerOptions server_options;
  server_options.num_loops = loops;
  server_options.max_connections = static_cast<int>(cfg.connections) + 4;
  net::Server server(bundle.store.get(), server_options);
  // The bundle (and its registry entry for the server) dies with this
  // scope, together with the server itself — no dangling registration.
  bundle.registry.Register("net", &server);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "sweep Server::Start: %s\n", st.ToString().c_str());
    return false;
  }

  out->load = DriveLoad(cfg, dist, server.port(), ops_total);
  st = server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "sweep Server::Stop: %s\n", st.ToString().c_str());
    return false;
  }
  if (!out->load.ok()) {
    std::fprintf(stderr, "sweep load failed: %llu errors, %u dead conns\n",
                 static_cast<unsigned long long>(out->load.errors),
                 out->load.failed_connections);
    return false;
  }

  out->snap = bundle.Metrics();
  out->busy = BusyFrom(out->snap, loops);
  const double eff = out->busy.EffectiveSeconds(loops);
  out->eff_ops_per_s =
      eff > 0 ? static_cast<double>(out->load.ops) / eff : 0.0;
  out->wall_ops_per_s =
      out->load.wall_seconds > 0
          ? static_cast<double>(out->load.ops) / out->load.wall_seconds
          : 0.0;

  obs::InvariantReport report = bundle.CheckInvariants();
  if (!report.ok()) {
    std::fprintf(stderr, "sweep invariants (loops=%u):\n%s\n", loops,
                 report.ToString().c_str());
    return false;
  }
  const bool loop_law_checked =
      std::find(report.laws_checked.begin(), report.laws_checked.end(),
                "net-loop-conservation") != report.laws_checked.end();
  if (!loop_law_checked) {
    std::fprintf(stderr, "net-loop-conservation was not evaluated\n");
    return false;
  }
  return true;
}

const char* DistName(KeyDistribution dist) {
  return dist == KeyDistribution::kUniform ? "uniform" : "zipf";
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(&cfg, argv[i])) {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (cfg.connections == 0 || cfg.depth == 0 || cfg.shards == 0 ||
      cfg.loops == 0) {
    std::fprintf(stderr,
                 "connections, depth, shards and loops must be positive\n");
    return 2;
  }

  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = cfg.keys;
  options.num_shards = cfg.shards;
  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore: %s\n", st.ToString().c_str());
    return 1;
  }
  auto* sharded = dynamic_cast<ShardedStore*>(bundle.store.get());
  if (sharded == nullptr) {
    std::fprintf(stderr, "factory did not build a ShardedStore\n");
    return 1;
  }

  Driver driver(cfg.seed);
  st = driver.Prepopulate(bundle.store.get(), cfg.keys, cfg.value_size);
  if (!st.ok()) {
    std::fprintf(stderr, "Prepopulate: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- in-process baseline: same mix, same thread count ---------------------
  auto gen_for_thread = [&cfg](uint64_t thread) -> std::function<Op()> {
    auto wl = std::make_shared<YcsbWorkload>(
        SpecFor(cfg, KeyDistribution::kZipfian, thread));
    return [wl]() { return wl->Next(); };
  };
  const uint64_t ops_per_thread = cfg.ops / cfg.connections;
  auto inproc = driver.RunThreads(sharded, gen_for_thread, cfg.connections,
                                  ops_per_thread);
  if (!inproc.ok()) {
    std::fprintf(stderr, "RunThreads: %s\n",
                 inproc.status().ToString().c_str());
    return 1;
  }
  if (!inproc->invariants.ok()) {
    std::fprintf(stderr, "in-process invariants:\n%s\n",
                 inproc->invariants.ToString().c_str());
    return 1;
  }

  // --- network run: same mix through the wire protocol ----------------------
  net::ServerOptions server_options;
  server_options.num_loops = cfg.loops;
  server_options.max_connections =
      static_cast<int>(cfg.connections) + 4;  // headroom for stragglers
  net::Server server(bundle.store.get(), server_options);
  bundle.registry.Register("net", &server);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Start: %s\n", st.ToString().c_str());
    return 1;
  }

  net::LoadStats load =
      DriveLoad(cfg, KeyDistribution::kZipfian, server.port(), cfg.ops);
  st = server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Stop: %s\n", st.ToString().c_str());
    return 1;
  }
  if (load.failed_connections > 0) {
    std::fprintf(stderr, "a client connection failed mid-run\n");
    return 1;
  }

  obs::Snapshot snap = bundle.Metrics();
  obs::InvariantReport report = bundle.CheckInvariants();
  std::printf("%s\n", report.ToString().c_str());
  if (!report.ok()) return 1;

  const LoopBusy busy = BusyFrom(snap, cfg.loops);
  const double net_eff_seconds = busy.EffectiveSeconds(cfg.loops);
  const double inproc_ops_per_s = inproc->Throughput();
  const double net_ops_per_s =
      load.wall_seconds > 0
          ? static_cast<double>(load.ops) / load.wall_seconds
          : 0.0;
  const double net_eff_ops_per_s =
      net_eff_seconds > 0 ? static_cast<double>(load.ops) / net_eff_seconds
                          : 0.0;
  const uint64_t protocol_errors = snap.Get("net.protocol_errors");

  std::string json = obs::BenchArtifactJson(
      "net_throughput", bundle.label,
      {{"ops", static_cast<double>(cfg.ops)},
       {"keys", static_cast<double>(cfg.keys)},
       {"shards", static_cast<double>(cfg.shards)},
       {"connections", static_cast<double>(cfg.connections)},
       {"pipeline_depth", static_cast<double>(cfg.depth)},
       {"loops", static_cast<double>(cfg.loops)},
       {"zipf_theta", cfg.theta},
       {"read_ratio", cfg.read_ratio},
       {"value_size", static_cast<double>(cfg.value_size)},
       {"inproc_ops_per_s", inproc_ops_per_s},
       {"inproc_effective_seconds", inproc->effective_seconds},
       {"inproc_busy_seconds", inproc->total_busy_seconds},
       {"net_ops_per_s", net_ops_per_s},
       {"net_eff_ops_per_s", net_eff_ops_per_s},
       {"net_effective_seconds", net_eff_seconds},
       {"net_loop_busy_seconds", busy.total_seconds},
       {"net_wall_seconds", load.wall_seconds},
       {"net_client_cpu_seconds", load.client_cpu_seconds},
       {"net_ops", static_cast<double>(load.ops)},
       {"net_not_found", static_cast<double>(load.not_found)},
       {"net_errors", static_cast<double>(load.errors)},
       {"protocol_errors", static_cast<double>(protocol_errors)},
       {"laws_checked", static_cast<double>(report.laws_checked.size())}},
      snap);
  st = obs::WriteFile(cfg.out, json);
  if (!st.ok()) {
    std::fprintf(stderr, "WriteFile: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf(
      "in-process: %.0f ops/s (effective)  |  network: %.0f ops/s wall, "
      "%.0f ops/s effective (%u loops, %llu conns x depth %llu, wall %.3fs)\n",
      inproc_ops_per_s, net_ops_per_s, net_eff_ops_per_s, cfg.loops,
      static_cast<unsigned long long>(cfg.connections),
      static_cast<unsigned long long>(cfg.depth), load.wall_seconds);
  std::printf("wrote %s (%zu metrics)\n", cfg.out.c_str(), snap.size());
  if (load.errors > 0 || protocol_errors > 0) {
    std::fprintf(stderr, "unexpected errors over the wire\n");
    return 1;
  }
  if (!cfg.sweep) return 0;

  // --- loop-count scaling sweep ---------------------------------------------
  const uint64_t sweep_ops = cfg.sweep_ops > 0 ? cfg.sweep_ops : cfg.ops;
  const uint32_t kLoopCounts[] = {1, 2, 4, 8};
  const KeyDistribution kDists[] = {KeyDistribution::kUniform,
                                    KeyDistribution::kZipfian};
  std::map<std::string, double> fields = {
      {"ops_per_run", static_cast<double>(sweep_ops)},
      {"keys", static_cast<double>(cfg.keys)},
      {"shards", static_cast<double>(cfg.shards)},
      {"connections", static_cast<double>(cfg.connections)},
      {"pipeline_depth", static_cast<double>(cfg.depth)},
      {"zipf_theta", cfg.theta},
      {"read_ratio", cfg.read_ratio},
      {"value_size", static_cast<double>(cfg.value_size)},
  };
  std::map<std::string, std::map<uint32_t, double>> eff;  // dist -> loops -> v
  obs::Snapshot scaling_snap;  // the uniform 4-loop run, for the artifact
  for (KeyDistribution dist : kDists) {
    for (uint32_t loops : kLoopCounts) {
      SweepOutcome outcome;
      if (!RunSweepPoint(cfg, dist, loops, sweep_ops, &outcome)) return 1;
      const std::string p =
          std::string(DistName(dist)) + "_l" + std::to_string(loops) + "_";
      fields[p + "eff_ops_per_s"] = outcome.eff_ops_per_s;
      fields[p + "wall_ops_per_s"] = outcome.wall_ops_per_s;
      fields[p + "loop_busy_seconds"] = outcome.busy.total_seconds;
      fields[p + "loop_busy_max_seconds"] = outcome.busy.max_seconds;
      eff[DistName(dist)][loops] = outcome.eff_ops_per_s;
      if (dist == KeyDistribution::kUniform && loops == 4) {
        scaling_snap = outcome.snap;
      }
      std::printf(
          "sweep %-7s loops=%u: %10.0f ops/s effective, %10.0f ops/s wall "
          "(loop busy %.3fs total, %.3fs max)\n",
          DistName(dist), loops, outcome.eff_ops_per_s, outcome.wall_ops_per_s,
          outcome.busy.total_seconds, outcome.busy.max_seconds);
    }
  }
  for (const auto& [dist, by_loops] : eff) {
    const double base = by_loops.at(1);
    for (const auto& [loops, v] : by_loops) {
      if (loops == 1 || base <= 0) continue;
      fields[dist + "_speedup_l" + std::to_string(loops)] = v / base;
    }
  }

  std::string scaling_json = obs::BenchArtifactJson(
      "net_scaling", bundle.label, fields, scaling_snap);
  st = obs::WriteFile(cfg.scaling_out, scaling_json);
  if (!st.ok()) {
    std::fprintf(stderr, "WriteFile: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (uniform 4-loop speedup %.2fx, zipf %.2fx)\n",
              cfg.scaling_out.c_str(), fields["uniform_speedup_l4"],
              fields["zipf_speedup_l4"]);
  return 0;
}
