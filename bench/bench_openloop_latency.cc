// Open-loop latency-vs-offered-load characterization (DESIGN.md §13): the
// closed-loop benches report throughput at saturation; this one reports
// what a *paced* client population experiences on the way there.
//
// Method:
//  1. Calibrate: a short closed-loop net::RunLoad burst measures the
//     store's saturation throughput M over the wire.
//  2. Sweep: open-loop runs at {0.25, 0.5, 0.75, 0.9, 1.1} x M offered QPS
//     (fresh store + server per level), each recording coordinated-
//     omission-safe p50/p99/p999 (latency stamped from the scheduled send
//     time) and the goal-QPS controller's saturation verdict. The headline
//     is max_sustained_qps: the highest achieved throughput whose p99 met
//     the SLO without the controller latching saturation.
//  3. Migration: one run at 0.5 x M with the Zipf hot set shifted mid-run;
//     per-window p99s give the pre-shift baseline, the post-shift peak and
//     the recovery time back under 1.5 x baseline, while the Secure Cache
//     swap counters price the hot-set turnover.
//
// Every run ends with the full conservation-law audit, including
// loadgen-request-conservation over the generator's own accounting.
//
//   ./build/bench/bench_openloop_latency [key=value ...]
//     keys=16384 shards=2 connections=4 theta=0.99 read_ratio=0.95
//     value_size=128 seed=42 calib_ops=60000 duration=1.0 slo_ms=20
//     migration_duration=3.0 quick=0 out=BENCH_openloop_latency.json
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/store_factory.h"
#include "loadgen/loadgen.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/invariants.h"
#include "obs/json.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace aria;

namespace {

struct Config {
  uint64_t keys = 16'384;
  uint32_t shards = 2;
  uint32_t connections = 4;
  double theta = 0.99;
  double read_ratio = 0.95;
  size_t value_size = 128;
  uint64_t seed = 42;
  uint64_t calib_ops = 60'000;  ///< closed-loop calibration burst
  double duration = 1.0;        ///< seconds per sweep level
  double slo_ms = 20.0;         ///< p99 SLO for max_sustained_qps
  double migration_duration = 3.0;
  /// Secure Cache budget for the migration run only (KiB). The sweep runs
  /// with the auto (max) cache; the migration run constrains it so the
  /// shifted hot set must displace the old one and the swap counters price
  /// the turnover. 0 = auto there too.
  uint64_t migration_cache_kb = 64;
  bool quick = false;  ///< tier-1 smoke: short calibration, 2 levels
  std::string out = "BENCH_openloop_latency.json";
};

bool ParseArg(Config* cfg, const std::string& arg) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const std::string key = arg.substr(0, eq);
  const std::string val = arg.substr(eq + 1);
  if (key == "keys") cfg->keys = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "shards")
    cfg->shards = static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
  else if (key == "connections")
    cfg->connections =
        static_cast<uint32_t>(std::strtoul(val.c_str(), nullptr, 10));
  else if (key == "theta") cfg->theta = std::strtod(val.c_str(), nullptr);
  else if (key == "read_ratio")
    cfg->read_ratio = std::strtod(val.c_str(), nullptr);
  else if (key == "value_size")
    cfg->value_size = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "seed") cfg->seed = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "calib_ops")
    cfg->calib_ops = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "duration") cfg->duration = std::strtod(val.c_str(), nullptr);
  else if (key == "slo_ms") cfg->slo_ms = std::strtod(val.c_str(), nullptr);
  else if (key == "migration_duration")
    cfg->migration_duration = std::strtod(val.c_str(), nullptr);
  else if (key == "migration_cache_kb")
    cfg->migration_cache_kb = std::strtoull(val.c_str(), nullptr, 10);
  else if (key == "quick") cfg->quick = val != "0";
  else if (key == "out") cfg->out = val;
  else return false;
  return true;
}

/// One open-loop run against a fresh prepopulated store + server.
struct RunOutcome {
  loadgen::OpenLoopReport report;
  obs::Snapshot snap;
  size_t laws_checked = 0;
};

bool RunOpenLoopPoint(const Config& cfg, double goal_qps, double duration,
                      double shift_seconds, uint64_t cache_bytes,
                      RunOutcome* out) {
  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = cfg.keys;
  options.num_shards = cfg.shards;
  options.cache_bytes = cache_bytes;
  StoreBundle bundle;
  Status st = CreateStore(options, &bundle);
  if (!st.ok()) {
    std::fprintf(stderr, "CreateStore: %s\n", st.ToString().c_str());
    return false;
  }
  Driver driver(cfg.seed);
  st = driver.Prepopulate(bundle.store.get(), cfg.keys, cfg.value_size);
  if (!st.ok()) {
    std::fprintf(stderr, "Prepopulate: %s\n", st.ToString().c_str());
    return false;
  }
  net::ServerOptions server_options;
  server_options.max_connections = static_cast<int>(cfg.connections) + 4;
  net::Server server(bundle.store.get(), server_options);
  bundle.registry.Register("net", &server);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Start: %s\n", st.ToString().c_str());
    return false;
  }

  loadgen::OpenLoopOptions opt;
  opt.port = server.port();
  opt.connections = cfg.connections;
  opt.goal_qps = goal_qps;
  opt.duration_seconds = duration;
  opt.hotspot_shift_seconds = shift_seconds;
  opt.timeout_nanos = 1'000'000'000;  // 1s: far past any healthy p999
  opt.seed = cfg.seed;
  loadgen::OpenLoopLoadGen lg(opt);
  bundle.registry.Register("loadgen", &lg);

  loadgen::YcsbStreamOptions stream;
  stream.keyspace = cfg.keys;
  stream.theta = cfg.theta;
  stream.scrambled = false;  // clustered hot keys, the paper's locality
  stream.read_ratio = cfg.read_ratio;
  stream.value_size = cfg.value_size;
  stream.seed = cfg.seed;
  st = lg.Run(loadgen::MakeYcsbRequestFn(cfg.connections, stream));
  if (!st.ok()) {
    std::fprintf(stderr, "OpenLoopLoadGen::Run: %s\n", st.ToString().c_str());
    return false;
  }
  st = server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "Server::Stop: %s\n", st.ToString().c_str());
    return false;
  }
  if (!lg.report().ok()) {
    std::fprintf(stderr,
                 "open-loop run failed: %llu errors, %u dead connections\n",
                 static_cast<unsigned long long>(lg.report().errors),
                 lg.report().failed_connections);
    return false;
  }

  out->report = lg.report();
  out->snap = bundle.Metrics();
  obs::InvariantReport audit = bundle.CheckInvariants();
  if (!audit.ok()) {
    std::fprintf(stderr, "invariants (goal=%.0f):\n%s\n", goal_qps,
                 audit.ToString().c_str());
    return false;
  }
  if (std::find(audit.laws_checked.begin(), audit.laws_checked.end(),
                "loadgen-request-conservation") == audit.laws_checked.end()) {
    std::fprintf(stderr, "loadgen-request-conservation was not evaluated\n");
    return false;
  }
  out->laws_checked = audit.laws_checked.size();
  return true;
}

/// Closed-loop saturation throughput over the wire (ops/s).
double Calibrate(const Config& cfg) {
  StoreOptions options;
  options.scheme = Scheme::kAria;
  options.index = IndexKind::kHash;
  options.keyspace = cfg.keys;
  options.num_shards = cfg.shards;
  StoreBundle bundle;
  if (!CreateStore(options, &bundle).ok()) return 0;
  Driver driver(cfg.seed);
  if (!driver.Prepopulate(bundle.store.get(), cfg.keys, cfg.value_size).ok()) {
    return 0;
  }
  net::ServerOptions server_options;
  server_options.max_connections = static_cast<int>(cfg.connections) + 4;
  net::Server server(bundle.store.get(), server_options);
  if (!server.Start().ok()) return 0;

  std::vector<std::unique_ptr<YcsbWorkload>> workloads;
  for (uint32_t t = 0; t < cfg.connections; ++t) {
    YcsbSpec spec;
    spec.keyspace = cfg.keys;
    spec.read_ratio = cfg.read_ratio;
    spec.value_size = cfg.value_size;
    spec.skewness = cfg.theta;
    spec.seed = cfg.seed + 7919 * (t + 1);
    workloads.push_back(std::make_unique<YcsbWorkload>(spec));
  }
  net::LoadOptions lo;
  lo.port = server.port();
  lo.connections = cfg.connections;
  lo.depth = 16;
  lo.ops_per_connection = cfg.calib_ops / cfg.connections;
  net::LoadStats stats =
      net::RunLoad(lo, [&workloads](uint64_t conn, uint64_t) {
        Op op = workloads[conn]->Next();
        net::Request req;
        req.key = MakeKey(op.key_id);
        if (op.type == OpType::kGet) {
          req.op = net::OpCode::kGet;
        } else {
          req.op = net::OpCode::kPut;
          req.value = MakeValue(op.key_id, op.value_size);
        }
        return req;
      });
  server.Stop().ok();
  if (!stats.ok() || stats.wall_seconds <= 0) return 0;
  return static_cast<double>(stats.ops) / stats.wall_seconds;
}

double MedianOf(std::vector<uint64_t> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return static_cast<double>(v[v.size() / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(&cfg, argv[i])) {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (cfg.quick) {
    cfg.calib_ops = std::min<uint64_t>(cfg.calib_ops, 16'000);
    cfg.duration = std::min(cfg.duration, 0.6);
    cfg.migration_duration = std::min(cfg.migration_duration, 1.6);
  }

  const double saturation_qps = Calibrate(cfg);
  if (saturation_qps <= 0) {
    std::fprintf(stderr, "calibration run failed\n");
    return 1;
  }
  std::printf("calibrated closed-loop saturation: %.0f ops/s\n",
              saturation_qps);

  const std::vector<double> kFullLevels = {0.25, 0.5, 0.75, 0.9, 1.1};
  const std::vector<double> kQuickLevels = {0.5, 1.1};
  const std::vector<double>& levels = cfg.quick ? kQuickLevels : kFullLevels;

  std::map<std::string, double> fields = {
      {"keys", static_cast<double>(cfg.keys)},
      {"shards", static_cast<double>(cfg.shards)},
      {"connections", static_cast<double>(cfg.connections)},
      {"zipf_theta", cfg.theta},
      {"read_ratio", cfg.read_ratio},
      {"value_size", static_cast<double>(cfg.value_size)},
      {"duration_seconds", cfg.duration},
      {"slo_p99_ms", cfg.slo_ms},
      {"calibrated_qps", saturation_qps},
      {"levels", static_cast<double>(levels.size())},
  };

  // --- latency vs offered load ----------------------------------------------
  const double slo_nanos = cfg.slo_ms * 1e6;
  double max_sustained_qps = 0;
  for (size_t i = 0; i < levels.size(); ++i) {
    const double goal = levels[i] * saturation_qps;
    RunOutcome outcome;
    if (!RunOpenLoopPoint(cfg, goal, cfg.duration, /*shift_seconds=*/0,
                          /*cache_bytes=*/0, &outcome)) {
      return 1;
    }
    const loadgen::OpenLoopReport& r = outcome.report;
    const std::string p = "level" + std::to_string(i) + "_";
    fields[p + "load_factor"] = levels[i];
    fields[p + "goal_qps"] = goal;
    fields[p + "offered_qps"] = r.offered_qps;
    fields[p + "achieved_qps"] = r.achieved_qps;
    fields[p + "p50_nanos"] = static_cast<double>(r.latency.P50());
    fields[p + "p99_nanos"] = static_cast<double>(r.latency.P99());
    fields[p + "p999_nanos"] = static_cast<double>(r.latency.P999());
    fields[p + "timed_out"] = static_cast<double>(r.timed_out);
    fields[p + "saturated"] = r.saturated ? 1 : 0;
    if (!r.saturated && static_cast<double>(r.latency.P99()) <= slo_nanos) {
      max_sustained_qps = std::max(max_sustained_qps, r.achieved_qps);
    }
    std::printf(
        "load %.2fx (%8.0f qps): achieved %8.0f qps  p50 %7.0fus  p99 "
        "%7.0fus  p999 %7.0fus%s\n",
        levels[i], goal, r.achieved_qps,
        static_cast<double>(r.latency.P50()) / 1e3,
        static_cast<double>(r.latency.P99()) / 1e3,
        static_cast<double>(r.latency.P999()) / 1e3,
        r.saturated ? "  [saturated]" : "");
  }
  fields["max_sustained_qps"] = max_sustained_qps;
  std::printf("max sustained under %.0fms p99 SLO: %.0f qps\n", cfg.slo_ms,
              max_sustained_qps);

  // --- hotspot migration ----------------------------------------------------
  // One shift just past the midpoint (x0.51 so a second epoch boundary can
  // never land inside the run); window p99s before it set the baseline, the
  // ones after show the disruption and the recovery.
  const double shift_at = 0.51 * cfg.migration_duration;
  RunOutcome migration;
  if (!RunOpenLoopPoint(cfg, 0.5 * saturation_qps, cfg.migration_duration,
                        shift_at, cfg.migration_cache_kb * 1024, &migration)) {
    return 1;
  }
  fields["migration_cache_kb"] = static_cast<double>(cfg.migration_cache_kb);
  const loadgen::OpenLoopReport& mr = migration.report;
  const double window_s = 0.25;
  const size_t shift_window =
      static_cast<size_t>(std::ceil(shift_at / window_s));
  std::vector<uint64_t> pre_p99;
  for (size_t w = 1; w < std::min(shift_window, mr.windows.size()); ++w) {
    if (mr.windows[w].completed > 0) pre_p99.push_back(mr.windows[w].p99_nanos);
  }
  const double pre_median = MedianOf(pre_p99);
  // Recovery = time from the shift until p99 *stays* within 1.5x the
  // pre-shift baseline, i.e. one window past the last breaching one. 0
  // means the shift never pushed p99 over the threshold.
  double peak = 0, recovery_seconds = 0;
  for (size_t w = shift_window; w < mr.windows.size(); ++w) {
    if (mr.windows[w].completed == 0) continue;
    peak = std::max(peak, static_cast<double>(mr.windows[w].p99_nanos));
    if (static_cast<double>(mr.windows[w].p99_nanos) > 1.5 * pre_median) {
      recovery_seconds = (static_cast<double>(w) + 1 - shift_window) * window_s;
    }
  }
  fields["migration_goal_qps"] = 0.5 * saturation_qps;
  fields["migration_shifts"] = static_cast<double>(mr.hotset_shifts);
  fields["migration_pre_p99_nanos"] = pre_median;
  fields["migration_peak_p99_nanos"] = peak;
  fields["migration_recovery_seconds"] = recovery_seconds;
  fields["migration_swapped_in_bytes"] = static_cast<double>(
      migration.snap.SumSuffix(".cache.bytes_swapped_in"));
  fields["laws_checked"] = static_cast<double>(migration.laws_checked);
  std::printf(
      "migration (%llu shifts): pre-shift p99 %.0fus, post-shift peak "
      "%.0fus, recovery %.2fs, %.0f MB swapped in\n",
      static_cast<unsigned long long>(mr.hotset_shifts), pre_median / 1e3,
      peak / 1e3, recovery_seconds,
      fields["migration_swapped_in_bytes"] / 1e6);

  // The migration run's snapshot carries the loadgen.* metric namespace the
  // docs check enforces.
  std::string json = obs::BenchArtifactJson("openloop_latency", "aria-hash",
                                            fields, migration.snap);
  Status st = obs::WriteFile(cfg.out, json);
  if (!st.ok()) {
    std::fprintf(stderr, "WriteFile: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu metrics)\n", cfg.out.c_str(),
              migration.snap.size());
  return 0;
}
