// Figure 2 — "Performance of different design schemes": throughput of
// Baseline (whole store in EPC), Aria w/o Cache (counters in EPC) and
// ShieldStore as the keyspace size grows from 4 MB to 128 MB (16-byte keys,
// zipf 0.99, 50% reads, 16-byte values). The page_swaps counter reproduces
// the Baseline-PS / Aria w/o Cache-PS lines. Also serves as the measured
// backing for Table I (see the epc_mb counter: EPC occupation per scheme).
//
// Expected shape: Baseline collapses once the working set passes the EPC;
// Aria w/o Cache stays flat until the counter array itself outgrows the
// EPC (~119 MB of keys at full scale); ShieldStore is flat but below
// Aria w/o Cache under skew.
#include "bench_common.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

// Paper x-axis: total key bytes in MB (16-byte keys).
constexpr double kKeyspaceMb[] = {4, 8, 12, 16, 24, 32, 64, 119, 128};
constexpr Scheme kSchemes[] = {Scheme::kBaseline, Scheme::kAriaNoCache,
                               Scheme::kShieldStore};

void RunPoint(benchmark::State& state, Scheme scheme, double keyspace_mb) {
  uint64_t keys = Keys(keyspace_mb * 1048576.0 / 16.0);
  std::string sig = std::string("fig2/") + SchemeName(scheme) + "/" +
                    std::to_string(keys);
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) { return CreateStore(PaperOptions(scheme, keys), b); },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, 16);
      });

  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = 0.50;
  spec.value_size = 16;
  spec.distribution = KeyDistribution::kZipfian;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(200000));
}

void Register() {
  for (Scheme scheme : kSchemes) {
    for (double mb : kKeyspaceMb) {
      std::string name = std::string("Fig02/") + SchemeName(scheme) +
                         "/keyspaceMB:" + std::to_string(static_cast<int>(mb));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [scheme, mb](benchmark::State& st) { RunPoint(st, scheme, mb); })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
