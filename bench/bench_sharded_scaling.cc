// Sharded front-end scaling: throughput of an 8-shard Aria hash store as
// the worker-thread count grows (1/2/4/8), under uniform and Zipfian(0.99)
// key distributions for YCSB-A (50/50), YCSB-B (95/5) and YCSB-C (reads).
//
// Manual time is the makespan lower bound from Driver::RunThreads
// (max(total_busy/threads, busiest shard)) rather than raw wall time, so
// the scaling curve is meaningful even on hosts with fewer cores than
// worker threads. ops_per_s, p50_us and p99_us are reported as counters.
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "bench_common.h"
#include "core/sharded_store.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

constexpr uint32_t kShards = 8;

uint64_t BenchKeys() { return Keys(1'000'000); }

std::string Signature() {
  return "sharded" + std::to_string(kShards) + "-aria-hash-" +
         std::to_string(BenchKeys());
}

StoreBundle* SharedStore() {
  return StoreCache::Instance().Get(
      Signature(),
      [](StoreBundle* bundle) {
        StoreOptions o = PaperOptions(Scheme::kAria, BenchKeys());
        o.num_shards = kShards;
        return CreateStore(o, bundle);
      },
      [](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, BenchKeys(), 128);
      });
}

void BM_ShardedYcsb(benchmark::State& state, double read_ratio,
                    KeyDistribution dist) {
  StoreBundle* bundle = SharedStore();
  if (bundle == nullptr) {
    state.SkipWithError("store construction failed");
    return;
  }
  auto* sharded = dynamic_cast<ShardedStore*>(bundle->store.get());
  if (sharded == nullptr) {
    state.SkipWithError("factory did not build a ShardedStore");
    return;
  }
  const uint64_t threads = static_cast<uint64_t>(state.range(0));
  const uint64_t total_ops = Ops(40'000);
  const uint64_t ops_per_thread = total_ops / threads;

  YcsbSpec spec;
  spec.keyspace = BenchKeys();
  spec.read_ratio = read_ratio;
  spec.value_size = 128;
  spec.distribution = dist;
  spec.skewness = 0.99;

  auto gen_for_thread = [&spec](uint64_t thread) -> std::function<Op()> {
    YcsbSpec s = spec;
    s.seed = spec.seed + 7919 * (thread + 1);
    auto wl = std::make_shared<YcsbWorkload>(s);
    return [wl]() { return wl->Next(); };
  };

  Driver driver;
  // Warm-up (untimed): re-establish the hot set after prepopulation.
  {
    auto w = driver.RunThreads(sharded, gen_for_thread, threads,
                               ops_per_thread / 4 + 1);
    if (!w.ok()) {
      state.SkipWithError(w.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto r = driver.RunThreads(sharded, gen_for_thread, threads,
                               ops_per_thread);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(r->effective_seconds);
    state.counters["ops_per_s"] = benchmark::Counter(r->Throughput());
    state.counters["p50_us"] = benchmark::Counter(
        static_cast<double>(r->latency.PercentileNanos(0.50)) / 1000.0);
    state.counters["p99_us"] = benchmark::Counter(
        static_cast<double>(r->latency.PercentileNanos(0.99)) / 1000.0);
    state.counters["sim_share"] = benchmark::Counter(
        r->effective_seconds > 0
            ? r->totals.sim_seconds / (r->totals.sim_seconds +
                                       r->totals.wall_seconds)
            : 0);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * ops_per_thread * threads));
}

#define SHARDED_BENCH(name, read_ratio, dist)                     \
  BENCHMARK_CAPTURE(BM_ShardedYcsb, name, read_ratio, dist)       \
      ->Arg(1)                                                    \
      ->Arg(2)                                                    \
      ->Arg(4)                                                    \
      ->Arg(8)                                                    \
      ->UseManualTime()                                           \
      ->Unit(benchmark::kMillisecond)

SHARDED_BENCH(A_uniform, 0.50, KeyDistribution::kUniform);
SHARDED_BENCH(A_zipf99, 0.50, KeyDistribution::kZipfian);
SHARDED_BENCH(B_uniform, 0.95, KeyDistribution::kUniform);
SHARDED_BENCH(B_zipf99, 0.95, KeyDistribution::kZipfian);
SHARDED_BENCH(C_uniform, 1.00, KeyDistribution::kUniform);
SHARDED_BENCH(C_zipf99, 1.00, KeyDistribution::kZipfian);

}  // namespace
}  // namespace ariabench
