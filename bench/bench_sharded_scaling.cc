// Sharded front-end scaling: throughput of a sharded store as the
// worker-thread count grows (1/2/4/8), under uniform and Zipfian(0.99) key
// distributions.
//
// Two modes in one binary:
//
//  * Default: the locked-vs-optimistic read-mode sweep. An 8-shard
//    AriaNoCache-hash store (the genuinely lock-free-capable scheme: MAC
//    verification needs no Secure Cache mutation) runs YCSB-B and YCSB-C,
//    uniform and zipf-0.99, in ReadMode::kLocked and ReadMode::kOptimistic,
//    and the artifact (BENCH_sharded_scaling.json) records the per-point
//    throughput plus the optimistic/locked uplift. Under skew the locked
//    GET path serializes on the hot shard's lock, so its makespan floor is
//    the busiest shard; epoch-protected lock-free GETs take that floor off
//    (DESIGN.md §14) — the uplift at >= 4 threads is the headline number.
//      bench_sharded_scaling [keys=N] [ops=N] [quick=1] [out=FILE.json]
//
//  * gbench=1 [--benchmark_* flags]: the original google-benchmark
//    families over the 8-shard Aria (full Secure Cache) store.
//
// Manual time is the makespan lower bound from Driver::RunThreads
// (max(total_busy/threads, busiest shard)) rather than raw wall time, so
// the scaling curve is meaningful even on hosts with fewer cores than
// worker threads. ops_per_s, p50_us and p99_us are reported as counters.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sharded_store.h"
#include "obs/json.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

constexpr uint32_t kShards = 8;

uint64_t BenchKeys() { return Keys(1'000'000); }

std::string Signature() {
  return "sharded" + std::to_string(kShards) + "-aria-hash-" +
         std::to_string(BenchKeys());
}

StoreBundle* SharedStore() {
  return StoreCache::Instance().Get(
      Signature(),
      [](StoreBundle* bundle) {
        StoreOptions o = PaperOptions(Scheme::kAria, BenchKeys());
        o.num_shards = kShards;
        return CreateStore(o, bundle);
      },
      [](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, BenchKeys(), 128);
      });
}

void BM_ShardedYcsb(benchmark::State& state, double read_ratio,
                    KeyDistribution dist) {
  StoreBundle* bundle = SharedStore();
  if (bundle == nullptr) {
    state.SkipWithError("store construction failed");
    return;
  }
  auto* sharded = dynamic_cast<ShardedStore*>(bundle->store.get());
  if (sharded == nullptr) {
    state.SkipWithError("factory did not build a ShardedStore");
    return;
  }
  const uint64_t threads = static_cast<uint64_t>(state.range(0));
  const uint64_t total_ops = Ops(40'000);
  const uint64_t ops_per_thread = total_ops / threads;

  YcsbSpec spec;
  spec.keyspace = BenchKeys();
  spec.read_ratio = read_ratio;
  spec.value_size = 128;
  spec.distribution = dist;
  spec.skewness = 0.99;

  auto gen_for_thread = [&spec](uint64_t thread) -> std::function<Op()> {
    YcsbSpec s = spec;
    s.seed = spec.seed + 7919 * (thread + 1);
    auto wl = std::make_shared<YcsbWorkload>(s);
    return [wl]() { return wl->Next(); };
  };

  Driver driver;
  // Warm-up (untimed): re-establish the hot set after prepopulation.
  {
    auto w = driver.RunThreads(sharded, gen_for_thread, threads,
                               ops_per_thread / 4 + 1);
    if (!w.ok()) {
      state.SkipWithError(w.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto r = driver.RunThreads(sharded, gen_for_thread, threads,
                               ops_per_thread);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(r->effective_seconds);
    state.counters["ops_per_s"] = benchmark::Counter(r->Throughput());
    state.counters["p50_us"] = benchmark::Counter(
        static_cast<double>(r->latency.PercentileNanos(0.50)) / 1000.0);
    state.counters["p99_us"] = benchmark::Counter(
        static_cast<double>(r->latency.PercentileNanos(0.99)) / 1000.0);
    state.counters["sim_share"] = benchmark::Counter(
        r->effective_seconds > 0
            ? r->totals.sim_seconds / (r->totals.sim_seconds +
                                       r->totals.wall_seconds)
            : 0);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * ops_per_thread * threads));
}

#define SHARDED_BENCH(name, read_ratio, dist)                     \
  BENCHMARK_CAPTURE(BM_ShardedYcsb, name, read_ratio, dist)       \
      ->Arg(1)                                                    \
      ->Arg(2)                                                    \
      ->Arg(4)                                                    \
      ->Arg(8)                                                    \
      ->UseManualTime()                                           \
      ->Unit(benchmark::kMillisecond)

SHARDED_BENCH(A_uniform, 0.50, KeyDistribution::kUniform);
SHARDED_BENCH(A_zipf99, 0.50, KeyDistribution::kZipfian);
SHARDED_BENCH(B_uniform, 0.95, KeyDistribution::kUniform);
SHARDED_BENCH(B_zipf99, 0.95, KeyDistribution::kZipfian);
SHARDED_BENCH(C_uniform, 1.00, KeyDistribution::kUniform);
SHARDED_BENCH(C_zipf99, 1.00, KeyDistribution::kZipfian);

// --- locked vs optimistic sweep ---------------------------------------------

struct SweepConfig {
  uint64_t keys = BenchKeys();
  uint64_t ops = Ops(40'000);  // total per point, split across threads
  std::string out = "BENCH_sharded_scaling.json";
  bool gbench = false;
};

const char* ModeName(ReadMode mode) {
  return mode == ReadMode::kOptimistic ? "optimistic" : "locked";
}

Status BuildSweepStore(ReadMode mode, const SweepConfig& cfg,
                       StoreBundle* bundle) {
  StoreOptions o = PaperOptions(Scheme::kAriaNoCache, cfg.keys);
  o.num_shards = kShards;
  o.read_mode = mode;
  ARIA_RETURN_IF_ERROR(CreateStore(o, bundle));
  Driver driver;
  return driver.Prepopulate(bundle->store.get(), cfg.keys, 128);
}

struct SweepWorkload {
  const char* name;
  double read_ratio;
  const char* dist_name;
  KeyDistribution dist;
};

int RunSweep(const SweepConfig& cfg) {
  const std::vector<SweepWorkload> workloads = {
      {"B", 0.95, "uniform", KeyDistribution::kUniform},
      {"B", 0.95, "zipf99", KeyDistribution::kZipfian},
      {"C", 1.00, "uniform", KeyDistribution::kUniform},
      {"C", 1.00, "zipf99", KeyDistribution::kZipfian},
  };
  const std::vector<uint64_t> thread_counts = {1, 2, 4, 8};
  const std::vector<ReadMode> modes = {ReadMode::kLocked,
                                       ReadMode::kOptimistic};

  // One store per read mode, reused across every point: repopulating
  // dominates runtime and the sweep's churn keeps both stores equivalent.
  std::map<ReadMode, std::unique_ptr<StoreBundle>> stores;
  for (ReadMode mode : modes) {
    auto bundle = std::make_unique<StoreBundle>();
    Status st = BuildSweepStore(mode, cfg, bundle.get());
    if (!st.ok()) {
      std::fprintf(stderr, "store (%s): %s\n", ModeName(mode),
                   st.ToString().c_str());
      return 1;
    }
    stores[mode] = std::move(bundle);
  }

  Driver driver;
  std::map<std::string, double> fields;
  fields["keys"] = static_cast<double>(cfg.keys);
  fields["ops_per_point"] = static_cast<double>(cfg.ops);
  fields["shards"] = kShards;
  uint64_t laws_checked = 0;

  std::printf(
      "%-10s %-11s %8s %12s %12s %10s %10s\n", "workload", "mode", "threads",
      "ops_per_s", "eff_ms", "lf_share", "p99_us");
  for (const SweepWorkload& wl : workloads) {
    const std::string wl_key =
        std::string(wl.name) + "_" + wl.dist_name;
    std::map<uint64_t, double> locked_ops_per_s;
    for (ReadMode mode : modes) {
      auto* sharded =
          dynamic_cast<ShardedStore*>(stores[mode]->store.get());
      if (sharded == nullptr) {
        std::fprintf(stderr, "factory did not build a ShardedStore\n");
        return 1;
      }
      for (uint64_t threads : thread_counts) {
        YcsbSpec spec;
        spec.keyspace = cfg.keys;
        spec.read_ratio = wl.read_ratio;
        spec.value_size = 128;
        spec.distribution = wl.dist;
        spec.skewness = 0.99;
        auto gen_for_thread =
            [&spec](uint64_t thread) -> std::function<Op()> {
          YcsbSpec s = spec;
          s.seed = spec.seed + 7919 * (thread + 1);
          auto gen = std::make_shared<YcsbWorkload>(s);
          return [gen]() { return gen->Next(); };
        };
        const uint64_t ops_per_thread = cfg.ops / threads + 1;
        // Warm-up (untimed).
        auto w = driver.RunThreads(sharded, gen_for_thread, threads,
                                   ops_per_thread / 4 + 1);
        if (!w.ok()) {
          std::fprintf(stderr, "warmup: %s\n", w.status().ToString().c_str());
          return 1;
        }
        auto r = driver.RunThreads(sharded, gen_for_thread, threads,
                                   ops_per_thread);
        if (!r.ok()) {
          std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
          return 1;
        }
        if (!r->invariants.ok()) {
          std::fprintf(stderr, "invariants (%s %s t%llu): %s\n", wl_key.c_str(),
                       ModeName(mode),
                       static_cast<unsigned long long>(threads),
                       r->invariants.ToString().c_str());
          return 1;
        }
        laws_checked += r->invariants.laws_checked.size();

        const double ops_per_s = r->Throughput();
        const double lf_share =
            r->total_busy_seconds > 0
                ? r->lockfree_busy_seconds / r->total_busy_seconds
                : 0.0;
        const std::string prefix = wl_key + "." + ModeName(mode) + ".t" +
                                   std::to_string(threads);
        fields[prefix + ".ops_per_s"] = ops_per_s;
        fields[prefix + ".effective_seconds"] = r->effective_seconds;
        fields[prefix + ".max_shard_busy_seconds"] =
            r->max_shard_busy_seconds;
        fields[prefix + ".lockfree_share"] = lf_share;
        fields[prefix + ".p99_us"] =
            static_cast<double>(r->latency.PercentileNanos(0.99)) / 1000.0;
        std::printf("%-10s %-11s %8llu %12.0f %12.2f %10.3f %10.1f\n",
                    wl_key.c_str(), ModeName(mode),
                    static_cast<unsigned long long>(threads), ops_per_s,
                    r->effective_seconds * 1e3, lf_share,
                    static_cast<double>(r->latency.PercentileNanos(0.99)) /
                        1000.0);
        if (mode == ReadMode::kLocked) {
          locked_ops_per_s[threads] = ops_per_s;
        } else if (locked_ops_per_s.count(threads) &&
                   locked_ops_per_s[threads] > 0) {
          fields[wl_key + ".t" + std::to_string(threads) + ".uplift"] =
              ops_per_s / locked_ops_per_s[threads];
        }
      }
    }
  }
  fields["laws_checked"] = static_cast<double>(laws_checked);

  for (const SweepWorkload& wl : workloads) {
    const std::string wl_key = std::string(wl.name) + "_" + wl.dist_name;
    std::printf("%s uplift (optimistic/locked):", wl_key.c_str());
    for (uint64_t threads : thread_counts) {
      const std::string k = wl_key + ".t" + std::to_string(threads) + ".uplift";
      if (fields.count(k)) {
        std::printf("  t%llu=%.2fx", static_cast<unsigned long long>(threads),
                    fields[k]);
      }
    }
    std::printf("\n");
  }

  // Final audited snapshot of the optimistic store: the artifact carries
  // the per-shard optimistic/epoch counters alongside the sweep numbers.
  obs::Snapshot snap = stores[ReadMode::kOptimistic]->Metrics();
  obs::InvariantReport report =
      stores[ReadMode::kOptimistic]->CheckInvariants();
  std::printf("%s\n", report.ToString().c_str());
  if (!report.ok()) return 1;

  std::string json = obs::BenchArtifactJson(
      "sharded_scaling", stores[ReadMode::kOptimistic]->label, fields, snap);
  Status st = obs::WriteFile(cfg.out, json);
  if (!st.ok()) {
    std::fprintf(stderr, "WriteFile: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", cfg.out.c_str());
  return 0;
}

}  // namespace
}  // namespace ariabench

int main(int argc, char** argv) {
  ariabench::SweepConfig cfg;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "keys=", 5) == 0) {
      cfg.keys = std::strtoull(a + 5, nullptr, 10);
    } else if (std::strncmp(a, "ops=", 4) == 0) {
      cfg.ops = std::strtoull(a + 4, nullptr, 10);
    } else if (std::strncmp(a, "out=", 4) == 0) {
      cfg.out = a + 4;
    } else if (std::strncmp(a, "quick=", 6) == 0) {
      quick = std::atoi(a + 6) != 0;
    } else if (std::strncmp(a, "gbench=", 7) == 0) {
      cfg.gbench = std::atoi(a + 7) != 0;
    } else if (std::strncmp(a, "--benchmark", 11) == 0) {
      cfg.gbench = true;  // any native benchmark flag implies gbench mode
    } else {
      std::fprintf(stderr,
                   "usage: %s [keys=N] [ops=N] [quick=1] [out=FILE.json] "
                   "[gbench=1 [--benchmark_*]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (quick) {
    cfg.keys = 8192;
    cfg.ops = 8000;
  }
  if (cfg.gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return ariabench::RunSweep(cfg);
}
