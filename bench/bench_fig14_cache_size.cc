// Figure 14 — "Performance on different size of Secure Cache": Aria with
// the Secure Cache budget reduced from 100% of the available EPC down to
// 16% (15 MB at full scale), for 10M- and 30M-key keyspaces, skewed
// workload, 95% reads. ShieldStore at the same keyspace (with its fixed
// 64 MB root array) is the reference line.
//
// Expected shape: throughput degrades gently (the paper loses ~9% at 50%
// and ~18% at 16% cache for 10M keys) because the hot set stays resident;
// even the smallest cache beats ShieldStore under skew.
#include "bench_common.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

constexpr double kFractions[] = {1.00, 0.50, 0.33, 0.25, 0.20, 0.16};
constexpr double kPaperKeys[] = {10e6, 30e6};

void RunAria(benchmark::State& state, double paper_keys, double fraction) {
  uint64_t keys = Keys(paper_keys);
  std::string sig = std::string("fig14/aria/") + std::to_string(keys) + "/" +
                    std::to_string(fraction);
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) {
        StoreOptions o = PaperOptions(Scheme::kAria, keys);
        if (fraction < 1.0) {
          o.cache_bytes = static_cast<uint64_t>(
              static_cast<double>(sgx::CostModel::kDefaultEpcBytes) * Scale() *
              fraction);
        }
        return CreateStore(o, b);
      },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, 16);
      });
  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = 0.95;
  spec.value_size = 16;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(250000));
}

void RunShield(benchmark::State& state, double paper_keys) {
  uint64_t keys = Keys(paper_keys);
  std::string sig = std::string("fig14/shield/") + std::to_string(keys);
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) {
        return CreateStore(PaperOptions(Scheme::kShieldStore, keys), b);
      },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, 16);
      });
  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = 0.95;
  spec.value_size = 16;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(250000));
}

void Register() {
  for (double pk : kPaperKeys) {
    int millions = static_cast<int>(pk / 1e6);
    for (double frac : kFractions) {
      std::string name = "Fig14/Aria-" + std::to_string(millions) +
                         "M/cache_pct:" + std::to_string(static_cast<int>(frac * 100));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [pk, frac](benchmark::State& st) { RunAria(st, pk, frac); })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    std::string sname = "Fig14/ShieldStore-" + std::to_string(millions) + "M";
    benchmark::RegisterBenchmark(
        sname.c_str(), [pk](benchmark::State& st) { RunShield(st, pk); })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
