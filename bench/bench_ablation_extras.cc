// Extra ablations for design choices DESIGN.md calls out, beyond the
// paper's own Fig. 12 grid:
//
//   clean-discard     — §IV-C "avoid write-back for clean cache items",
//                       on vs off, under a read-heavy skewed workload whose
//                       evictions are mostly clean.
//   stop-swap         — §IV-E adaptive stop under uniform traffic, on vs
//                       off vs forced-from-start.
//   zipf-scrambling   — hot keys clustered in the counter area (default)
//                       vs scrambled over it (YCSB ScrambledZipfian): the
//                       locality assumption behind Secure Cache hit ratios.
//   index choice      — Aria-H vs Aria-C (cuckoo) vs Aria-B+ on the same
//                       workload: the decoupled-metadata claim measured.
#include "bench_common.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

StoreBundle* MakeStore(const std::string& sig, const StoreOptions& opts,
                       uint64_t keys) {
  return StoreCache::Instance().Get(
      sig, [&](StoreBundle* b) { return CreateStore(opts, b); },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, 16);
      });
}

void RunYcsbPoint(benchmark::State& state, StoreBundle* bundle,
                  const YcsbSpec& spec, uint64_t ops) {
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, ops);
}

void RegisterCleanDiscard() {
  for (bool avoid : {true, false}) {
    std::string name =
        std::string("Ablation/clean_discard:") + (avoid ? "on" : "off");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [avoid](benchmark::State& st) {
          uint64_t keys = Keys(10e6);
          StoreOptions o = PaperOptions(Scheme::kAria, keys);
          o.avoid_clean_writeback = avoid;
          // Small cache: evictions happen constantly, mostly clean at R95.
          o.cache_bytes = Epc() / 8;
          StoreBundle* b = MakeStore(
              std::string("abl-clean/") + (avoid ? "1" : "0"), o, keys);
          YcsbSpec spec;
          spec.keyspace = keys;
          spec.read_ratio = 0.95;
          RunYcsbPoint(st, b, spec, Ops(200000));
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void RegisterStopSwap() {
  struct Mode {
    const char* name;
    bool enabled;
    bool start_stopped;
  };
  for (Mode m : {Mode{"adaptive", true, false}, Mode{"never", false, false},
                 Mode{"always", true, true}}) {
    std::string name = std::string("Ablation/stop_swap:") + m.name;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [m](benchmark::State& st) {
          uint64_t keys = Keys(10e6);
          StoreOptions o = PaperOptions(Scheme::kAria, keys);
          o.stop_swap_enabled = m.enabled;
          o.start_stopped = m.start_stopped;
          StoreBundle* b =
              MakeStore(std::string("abl-stop/") + m.name, o, keys);
          YcsbSpec spec;
          spec.keyspace = keys;
          spec.read_ratio = 0.95;
          spec.distribution = KeyDistribution::kUniform;
          RunYcsbPoint(st, b, spec, Ops(200000));
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void RegisterScrambling() {
  for (bool scrambled : {false, true}) {
    std::string name = std::string("Ablation/zipf:") +
                       (scrambled ? "scrambled" : "clustered");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [scrambled](benchmark::State& st) {
          uint64_t keys = Keys(10e6);
          StoreOptions o = PaperOptions(Scheme::kAria, keys);
          StoreBundle* b = MakeStore("abl-scramble", o, keys);
          YcsbSpec spec;
          spec.keyspace = keys;
          spec.read_ratio = 0.95;
          spec.scrambled = scrambled;
          RunYcsbPoint(st, b, spec, Ops(200000));
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void RegisterIndexes() {
  struct Ix {
    const char* name;
    IndexKind kind;
    double ops;
  };
  for (Ix ix : {Ix{"hash", IndexKind::kHash, 200000},
                Ix{"cuckoo", IndexKind::kCuckoo, 200000},
                Ix{"bplus", IndexKind::kBPlusTree, 30000},
                Ix{"btree", IndexKind::kBTree, 30000}}) {
    std::string name = std::string("Ablation/index:") + ix.name;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [ix](benchmark::State& st) {
          // Trees are ~10x slower; a smaller keyspace keeps setup sane.
          uint64_t keys = Keys(2e6);
          StoreOptions o = PaperOptions(Scheme::kAria, keys, ix.kind);
          StoreBundle* b =
              MakeStore(std::string("abl-index/") + ix.name, o, keys);
          YcsbSpec spec;
          spec.keyspace = keys;
          spec.read_ratio = 0.95;
          RunYcsbPoint(st, b, spec, Ops(ix.ops));
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

int dummy = (RegisterCleanDiscard(), RegisterStopSwap(), RegisterScrambling(),
             RegisterIndexes(), 0);

}  // namespace
}  // namespace ariabench
