// Figure 12 — "Effects of different optimizations and the overhead of SGX"
// (ETC workload, hash index, read ratios {0,50,95,100}%):
//
//   AriaBase   — no optimizations: OCALL per allocation, LRU, no pinning
//   +HeapAlloc — user-space heap allocator (kills the per-write OCALL)
//   +PIN       — heap allocator + level pinning (still LRU)
//   +FIFO      — heap allocator + FIFO replacement (no pinning)
//   Aria       — all optimizations (heap + FIFO + pinning + stop-swap)
//   Aria-noSGX — Aria with the SGX cost model disabled (enclave-free run)
//   plus ShieldStore and Aria w/o Cache as references.
//
// All Aria-family variants use out-of-place overwrites, as the original
// implementations do — that is what generates the per-write allocation the
// heap allocator absorbs.
//
// Expected shape: AriaBase far below +HeapAlloc at low read ratios, equal
// at 100% reads; FIFO above LRU; Aria on top; Aria-noSGX above Aria by the
// residual SGX protection overhead (~25% in the paper).
#include "bench_common.h"
#include "workload/etc.h"

namespace ariabench {
namespace {

struct Variant {
  const char* name;
  Scheme scheme;
  bool heap_alloc;
  CachePolicy policy;
  int pinned_levels;
  bool stop_swap;
  bool sgx_enabled;
};

constexpr Variant kVariants[] = {
    {"ShieldStore", Scheme::kShieldStore, true, CachePolicy::kFifo, 0, false, true},
    {"AriaNoCache", Scheme::kAriaNoCache, true, CachePolicy::kFifo, 0, false, true},
    {"AriaBase", Scheme::kAria, false, CachePolicy::kLru, 0, false, true},
    {"+HeapAlloc", Scheme::kAria, true, CachePolicy::kLru, 0, false, true},
    {"+PIN", Scheme::kAria, true, CachePolicy::kLru, -1, false, true},
    {"+FIFO", Scheme::kAria, true, CachePolicy::kFifo, 0, false, true},
    {"Aria", Scheme::kAria, true, CachePolicy::kFifo, -1, true, true},
    {"Aria-noSGX", Scheme::kAria, true, CachePolicy::kFifo, -1, true, false},
};

constexpr double kReadRatios[] = {0.0, 0.50, 0.95, 1.00};

void RunPoint(benchmark::State& state, const Variant& v, double read_ratio) {
  uint64_t keys = Keys(10e6);
  EtcSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = read_ratio;
  EtcWorkload wl(spec);

  std::string sig = std::string("fig12/") + v.name;
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) {
        StoreOptions o = PaperOptions(v.scheme, keys);
        o.use_heap_allocator = v.heap_alloc;
        o.policy = v.policy;
        o.pinned_levels = v.pinned_levels;
        o.stop_swap_enabled = v.stop_swap;
        o.cost_model.enabled = v.sgx_enabled;
        // Original-system write behavior: every Put allocates.
        o.out_of_place_updates = true;
        return CreateStore(o, b);
      },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(
            store, keys, [&wl](uint64_t id) { return wl.ValueSizeFor(id); });
      });

  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(200000));
}

void Register() {
  for (const Variant& v : kVariants) {
    for (double rr : kReadRatios) {
      std::string name = std::string("Fig12/") + v.name +
                         "/rd:" + std::to_string(static_cast<int>(rr * 100));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&v, rr](benchmark::State& st) { RunPoint(st, v, rr); })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
