// Figure 9 — "Overall performance with hash table-based index": six panels
// (uniform/skew × read ratio 50/95/100 %) × value size {16,128,512} B, for
// Baseline, Aria w/o Cache, ShieldStore and Aria. Keyspace 10M (scaled).
//
// Expected shape: Aria above ShieldStore under skew (~28-40%); ShieldStore
// slightly ahead under uniform at this keyspace; Baseline far below
// everything (hardware paging); Aria w/o Cache between ShieldStore and
// Aria under skew.
#include "bench_common.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

constexpr Scheme kSchemes[] = {Scheme::kBaseline, Scheme::kAriaNoCache,
                               Scheme::kShieldStore, Scheme::kAria};
constexpr size_t kValueSizes[] = {16, 128, 512};
constexpr double kReadRatios[] = {0.50, 0.95, 1.00};

void RunPoint(benchmark::State& state, Scheme scheme, size_t value_size,
              bool skew, double read_ratio) {
  uint64_t keys = Keys(10e6);
  std::string sig = std::string("fig9/") + SchemeName(scheme) + "/v" +
                    std::to_string(value_size);
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) { return CreateStore(PaperOptions(scheme, keys), b); },
      [&](KVStore* store) {
        Driver driver;
        return driver.Prepopulate(store, keys, value_size);
      });

  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = read_ratio;
  spec.value_size = value_size;
  spec.distribution =
      skew ? KeyDistribution::kZipfian : KeyDistribution::kUniform;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(250000));
}

void Register() {
  // Grouped so every (scheme, value size) store is built once and reused
  // across the six workload panels.
  for (Scheme scheme : kSchemes) {
    for (size_t vs : kValueSizes) {
      for (bool skew : {true, false}) {
        for (double rr : kReadRatios) {
          std::string name =
              std::string("Fig09/") + SchemeName(scheme) +
              (skew ? "/skew" : "/uniform") +
              "/rd:" + std::to_string(static_cast<int>(rr * 100)) +
              "/val:" + std::to_string(vs);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [scheme, vs, skew, rr](benchmark::State& st) {
                RunPoint(st, scheme, vs, skew, rr);
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
