// Figure 13 — "Performance on various keyspace size": Aria vs ShieldStore
// vs Aria w/o Cache with the keyspace growing from 119 MB to 2 GB of keys
// (7.7M to 134M keys at full scale), three panels: uniform / skew / ETC,
// all at 95% reads, 16-byte values, hash index.
//
// Expected shape: everything declines with keyspace, but Aria declines the
// least. ShieldStore's bucket count is capped by its root array (64 MB of
// EPC), so its chains — and its bucket-granularity verification cost —
// grow linearly with the keyspace: Aria's advantage widens to ~2x at 2 GB
// under skew (~44% under uniform, where stop-swap + pinning give Aria a
// fixed one-verification cost per miss). Aria w/o Cache falls behind both
// once counter paging dominates.
#include "bench_common.h"
#include "workload/etc.h"
#include "workload/ycsb.h"

namespace ariabench {
namespace {

constexpr double kKeyspaceMb[] = {119, 128, 256, 512, 1024, 1536, 2048};
constexpr Scheme kSchemes[] = {Scheme::kAria, Scheme::kShieldStore,
                               Scheme::kAriaNoCache};
enum class Panel { kUniform, kSkew, kEtc };

void RunPoint(benchmark::State& state, Scheme scheme, Panel panel,
              double keyspace_mb) {
  uint64_t keys = Keys(keyspace_mb * 1048576.0 / 16.0);
  EtcSpec etc_spec;
  etc_spec.keyspace = keys;
  etc_spec.read_ratio = 0.95;
  EtcWorkload etc(etc_spec);

  bool etc_values = panel == Panel::kEtc;
  std::string sig = std::string("fig13/") + SchemeName(scheme) + "/" +
                    std::to_string(keys) + (etc_values ? "/etc" : "/fixed");
  StoreBundle* bundle = StoreCache::Instance().Get(
      sig,
      [&](StoreBundle* b) { return CreateStore(PaperOptions(scheme, keys), b); },
      [&](KVStore* store) {
        Driver driver;
        if (etc_values) {
          return driver.Prepopulate(store, keys, [&etc](uint64_t id) {
            return etc.ValueSizeFor(id);
          });
        }
        return driver.Prepopulate(store, keys, 16);
      });

  if (panel == Panel::kEtc) {
    ReplayAndReport(state, bundle, [&etc] { return etc.Next(); }, Ops(100000));
    return;
  }
  YcsbSpec spec;
  spec.keyspace = keys;
  spec.read_ratio = 0.95;
  spec.value_size = 16;
  spec.distribution = panel == Panel::kSkew ? KeyDistribution::kZipfian
                                            : KeyDistribution::kUniform;
  YcsbWorkload wl(spec);
  ReplayAndReport(state, bundle, [&wl] { return wl.Next(); }, Ops(100000));
}

void Register() {
  // Grouped by (scheme, keyspace, value layout) so the uniform and skew
  // panels share one store.
  const struct {
    Panel panel;
    const char* name;
  } kPanels[] = {{Panel::kSkew, "skew"},       // before uniform: stop-swap
                 {Panel::kUniform, "uniform"},  // is one-way per store
                 {Panel::kEtc, "etc"}};
  for (Scheme scheme : kSchemes) {
    for (double mb : kKeyspaceMb) {
      for (auto [panel, pname] : kPanels) {
        std::string name = std::string("Fig13/") + pname + "/" +
                           SchemeName(scheme) +
                           "/keyspaceMB:" + std::to_string(static_cast<int>(mb));
        benchmark::RegisterBenchmark(
            name.c_str(),
            [scheme, panel, mb](benchmark::State& st) {
              RunPoint(st, scheme, panel, mb);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

int dummy = (Register(), 0);

}  // namespace
}  // namespace ariabench
