#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test battery.
# This is the exact line CI and ROADMAP.md treat as the gate; keep it in
# sync with both. Usage: scripts/run_tier1.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
