#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test battery.
# This is the exact line CI and ROADMAP.md treat as the gate; keep it in
# sync with both. Usage: scripts/run_tier1.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Loopback serving-layer smoke: the network battery again on its own label
# (fast; already part of the full run above), then the load generator
# end-to-end — multi-loop server (4 epoll loops over 4 shards) + pipelined
# clients + loop-count sweep artifact + invariant audit (including
# net-loop-conservation, which reconciles per-loop counters with the
# aggregates).
ctest --test-dir "$BUILD_DIR" --output-on-failure -L net
"$BUILD_DIR"/bench/bench_net_throughput ops=20000 keys=8192 loops=4 \
  out="$BUILD_DIR"/BENCH_net_throughput_smoke.json \
  scaling_out="$BUILD_DIR"/BENCH_net_scaling_smoke.json

# Open-loop load-generator smoke: the statistical battery on its own label
# (arrival goodness-of-fit, controller convergence, hotspot-migration
# differential, coordinated-omission regression, conservation negative
# controls), then a quick latency-vs-offered-QPS sweep + migration run
# emitting the BENCH artifact with its invariant audit (including
# loadgen-request-conservation).
ctest --test-dir "$BUILD_DIR" --output-on-failure -L loadgen
"$BUILD_DIR"/bench/bench_openloop_latency quick=1 keys=8192 \
  out="$BUILD_DIR"/BENCH_openloop_latency_smoke.json

# Lock-free GET battery on its own label (fast; already part of the full
# run above): epoch reclamation unit tests, the single-writer-register
# linearizability checker, and the stall-hook torn-read choreography —
# the gate for the optimistic read path (DESIGN.md §14).
ctest --test-dir "$BUILD_DIR" --output-on-failure -L lockfree

# Atomic multi-key batch battery on its own label (fast; already part of
# the full run above): all-or-none rollback with its broken-atomicity
# negative control, the multi-writer atomicity torture in both read modes,
# and the opposite-key-order deadlock regression (DESIGN.md §15). Then the
# batch amortization smoke: mt-update passes per op across batch sizes
# 1/4/16/64 must fall strictly, with the invariant audit (including
# batch-atomicity-conservation) on every size.
ctest --test-dir "$BUILD_DIR" --output-on-failure -L batch
"$BUILD_DIR"/bench/bench_atomic_batch 40000 \
  "$BUILD_DIR"/BENCH_atomic_batch_smoke.json

# Locked-vs-optimistic read-mode sweep smoke: 8-shard store, YCSB-B/C ×
# uniform/zipf-0.99 × 1..8 threads in both read modes, with the invariant
# audit (optimistic-read-conservation, epoch-reclamation-conservation) run
# on every point. quick=1 shrinks keyspace/ops so this stays seconds.
"$BUILD_DIR"/bench/bench_sharded_scaling quick=1 \
  out="$BUILD_DIR"/BENCH_sharded_scaling_smoke.json

# Metrics catalog gate: every metric the system emits must be documented
# in docs/METRICS.md (runs the smoke benches into a temp dir and diffs).
BUILD_DIR="$BUILD_DIR" scripts/check_metrics_doc.sh
