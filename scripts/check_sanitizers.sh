#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer,
# UndefinedBehaviorSanitizer and ThreadSanitizer. Usage:
#
#   scripts/check_sanitizers.sh [address|undefined|thread|all]   (default: all)
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/) so the regular build/ stays untouched. Benchmarks and
# examples are skipped: the tests are what we want instrumented. The TSan
# run is what certifies the sharded front-end's locking discipline AND the
# epoch-protected lock-free GET path (seqlock publish windows, epoch
# pin/retire/reclaim ordering) — both read modes are exercised by the
# batteries below.
set -euo pipefail

cd "$(dirname "$0")/.."

run_one() {
  local kind="$1"
  local dir="build-$2"
  echo "=== ${kind} sanitizer: configuring ${dir} ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DARIA_SANITIZE="${kind}" \
    -DARIA_BUILD_BENCHMARKS=OFF \
    -DARIA_BUILD_EXAMPLES=OFF
  cmake --build "${dir}" -j "$(nproc)"
  echo "=== ${kind} sanitizer: running ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
  # The serving layer again on its own label: the multi-loop epoll server,
  # loopback differentials and loop-targeted fault injections are the most
  # concurrency-dense code in the tree — make their pass/fail visible per
  # sanitizer rather than buried in the full run above.
  echo "=== ${kind} sanitizer: running net-labeled tests ==="
  ctest --test-dir "${dir}" --output-on-failure -L net
  # And the open-loop load generator: paced sender + timeout-reaping
  # receiver threads per connection against the live server, the other
  # concurrency hot spot.
  echo "=== ${kind} sanitizer: running loadgen-labeled tests ==="
  ctest --test-dir "${dir}" --output-on-failure -L loadgen
  # The lock-free GET battery: epoch reclamation, the linearizability
  # register checker and the torn-read choreography drive racing readers
  # against in-place writers in both read modes — under TSan this is the
  # certification that the seqlock + epoch ordering has no data race the
  # model can see; under ASan it certifies reclamation never frees early.
  echo "=== ${kind} sanitizer: running lockfree-labeled tests ==="
  ctest --test-dir "${dir}" --output-on-failure -L lockfree
  # The atomic multi-key batch battery: ascending-shard-order lock
  # acquisition under 4 threads issuing opposite key orders (the deadlock
  # regression), mid-batch fault rollback, and multi-writer atomicity
  # torture in both read modes — under TSan this certifies the batch lock
  # discipline, under ASan the rollback's undo-log value handling.
  echo "=== ${kind} sanitizer: running batch-labeled tests ==="
  ctest --test-dir "${dir}" --output-on-failure -L batch
}

case "${1:-all}" in
  address)   run_one address asan ;;
  undefined) run_one undefined ubsan ;;
  thread)    run_one thread tsan ;;
  all)       run_one address asan; run_one undefined ubsan; run_one thread tsan ;;
  *) echo "usage: $0 [address|undefined|thread|all]" >&2; exit 2 ;;
esac

echo "All sanitizer runs passed."
