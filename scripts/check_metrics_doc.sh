#!/usr/bin/env bash
# Check that docs/METRICS.md documents every metric the system actually
# emits. Runs bench_metrics_smoke (full store stack), a small multi-loop
# bench_net_throughput (network layer, per-loop namespaces) and a quick
# bench_openloop_latency (open-loop load generator, per-connection
# namespaces), extracts every metric name observed in the resulting
# BENCH_*.json artifacts, normalizes the repeated namespaces
# (treeN / loopN / connN / shardN / batch_size_p2_B), and fails if any observed
# name is missing from the catalog tables.
#
# Documented-but-not-observed names are fine: the catalog also covers index
# kinds and schemes the smoke run does not instantiate.
#
# Usage: scripts/check_metrics_doc.sh   (from anywhere; BUILD_DIR=build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

SMOKE="$BUILD_DIR/bench/bench_metrics_smoke"
NET="$BUILD_DIR/bench/bench_net_throughput"
OPENLOOP="$BUILD_DIR/bench/bench_openloop_latency"
DOC=docs/METRICS.md

for f in "$SMOKE" "$NET" "$OPENLOOP"; do
  if [ ! -x "$f" ]; then
    echo "check_metrics_doc: missing $f (build first: cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done
[ -f "$DOC" ] || { echo "check_metrics_doc: missing $DOC" >&2; exit 1; }

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

ROOT=$PWD
(cd "$TMP" && "$ROOT/$SMOKE" > smoke.log 2>&1) \
  || { echo "check_metrics_doc: bench_metrics_smoke failed:" >&2; cat "$TMP/smoke.log" >&2; exit 1; }
(cd "$TMP" && "$ROOT/$NET" ops=8000 keys=4096 loops=2 sweep=0 > net.log 2>&1) \
  || { echo "check_metrics_doc: bench_net_throughput failed:" >&2; cat "$TMP/net.log" >&2; exit 1; }
(cd "$TMP" && "$ROOT/$OPENLOOP" quick=1 keys=4096 calib_ops=8000 duration=0.3 migration_duration=0.8 > openloop.log 2>&1) \
  || { echo "check_metrics_doc: bench_openloop_latency failed:" >&2; cat "$TMP/openloop.log" >&2; exit 1; }

# Metric lines in the artifacts are uniquely the 4-space-indented integer
# fields ('    "name": 123,'); run-level fields sit at 2-space indent with
# float values, so this pattern cannot pick them up.
sed -n 's/^    "\([^"]*\)": [0-9][0-9]*,\{0,1\}$/\1/p' "$TMP"/BENCH_*.json \
  | sed -e 's/\.tree[0-9][0-9]*\./.treeN./' \
        -e 's/\.loop[0-9][0-9]*\./.loopN./' \
        -e 's/\.conn[0-9][0-9]*\./.connN./' \
        -e 's/\.shard[0-9][0-9]*\./.shardN./' \
        -e 's/batch_size_p2_[0-9][0-9]*$/batch_size_p2_B/' \
  | sort -u > "$TMP/observed"

sed -n 's/^| `\([^`]*\)` .*/\1/p' "$DOC" | sort -u > "$TMP/documented"

if [ ! -s "$TMP/observed" ]; then
  echo "check_metrics_doc: extracted zero metric names — artifact layout changed?" >&2
  exit 1
fi

MISSING=$(comm -23 "$TMP/observed" "$TMP/documented")
if [ -n "$MISSING" ]; then
  echo "check_metrics_doc: FAIL — emitted but not documented in $DOC:" >&2
  echo "$MISSING" >&2
  exit 1
fi

echo "check_metrics_doc: OK ($(wc -l < "$TMP/observed") observed metric names, all documented)"
